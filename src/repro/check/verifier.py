"""Litmus-suite verification against a µspec model (COATCheck's role).

For each test the verifier decides observability of the test's outcome
under the model and compares with the ISA-level SC reference:

* outcome forbidden by SC and unobservable  -> PASS (bug-free)
* outcome forbidden by SC but observable    -> FAIL (MCM violation!)
* outcome allowed by SC and observable      -> PASS (model not overstrict)
* outcome allowed by SC but unobservable    -> PASS with an
  ``overstrict`` flag (sound, but the model forbids more than SC does —
  possibly more than the hardware does).

Two interchangeable solving engines (verdict-identical, pinned by the
engine-equivalence tests): ``fresh`` grounds and solves each test from
scratch; ``incremental`` grounds the program once and decides the final
condition as an assumption flip (:mod:`repro.check.incremental`).
``check_suite(tests, jobs=N)`` fans tests out to a process pool with
deterministic, input-ordered results.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..litmus import LitmusTest
from ..uspec import Model
from . import parallel
from .solver import ObservabilityResult, UhbGraph, solve_observability

ENGINES = ("fresh", "incremental")


@dataclass
class TestVerdict:
    name: str
    observable: bool
    permitted_sc: bool
    time_ms: float
    iterations: int
    graph: Optional[UhbGraph] = None
    vars: int = 0
    clauses: int = 0
    ground_ms: float = 0.0
    solve_ms: float = 0.0

    @property
    def passed(self) -> bool:
        return self.permitted_sc or not self.observable

    @property
    def overstrict(self) -> bool:
        return self.permitted_sc and not self.observable

    def __repr__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        flag = " (overstrict)" if self.overstrict else ""
        return (f"TestVerdict({self.name}: {status}{flag}, "
                f"observable={self.observable}, sc_permits={self.permitted_sc}, "
                f"{self.time_ms:.1f} ms)")


def _check_one_worker(test: LitmusTest) -> TestVerdict:
    """Pool task: check one litmus test against the worker's checker."""
    state = parallel.worker_state()
    checker = state.get("checker")
    if checker is None:
        checker = Checker(state["model"],
                          keep_graphs=state["keep_graphs"],
                          engine=state["engine"],
                          order_encoding=state["order_encoding"])
        state["checker"] = checker
    return checker.check_test(test)


class Checker:
    """Verifies litmus tests against one synthesized µspec model."""

    def __init__(self, model: Model, keep_graphs: bool = False,
                 engine: str = "fresh", order_encoding: str = "components"):
        if engine not in ENGINES:
            from ..errors import CheckError
            raise CheckError(f"unknown check engine {engine!r} "
                             f"(expected one of {ENGINES})")
        self.model = model
        self.keep_graphs = keep_graphs
        self.engine = engine
        self.order_encoding = order_encoding

    def check_outcome(self, test: LitmusTest) -> ObservabilityResult:
        """Raw observability of the test's final condition."""
        if self.engine == "incremental":
            from .incremental import ProgramSolver
            instance = ProgramSolver(self.model, test,
                                     order_encoding=self.order_encoding)
            return instance.decide(test.final, keep_graph=self.keep_graphs)
        return solve_observability(self.model, test,
                                   order_encoding=self.order_encoding)

    def check_test(self, test: LitmusTest) -> TestVerdict:
        start = time.perf_counter()
        permitted = test.permitted_under_sc()
        result = self.check_outcome(test)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        stats = result.stats
        return TestVerdict(
            name=test.name,
            observable=result.observable,
            permitted_sc=permitted,
            time_ms=elapsed_ms,
            iterations=result.iterations,
            graph=result.graph if self.keep_graphs else None,
            vars=stats.vars,
            clauses=stats.clauses,
            ground_ms=stats.ground_ms,
            solve_ms=stats.solve_ms,
        )

    def check_suite(self, tests: Iterable[LitmusTest],
                    jobs: int = 1) -> List[TestVerdict]:
        """Check every test; ``jobs>1`` fans out to a process pool with
        results in input order (identical to ``jobs=1``)."""
        tests = list(tests)
        return parallel.map_indexed(
            tests, _check_one_worker, self.check_test, jobs,
            state={"model": self.model, "keep_graphs": self.keep_graphs,
                   "engine": self.engine,
                   "order_encoding": self.order_encoding})


def format_suite_report(verdicts: List[TestVerdict],
                        show_stats: bool = True) -> str:
    """Artifact-appendix style report (paper A.5), with per-test
    encoding/solve statistics."""
    lines = []
    total_ms = 0.0
    failures = 0
    for verdict in verdicts:
        line = (f"{verdict.name + '.test':<24} {verdict.time_ms:10.3f} ms  "
                f"{'PASS' if verdict.passed else 'FAIL'}"
                f"{' (overstrict)' if verdict.overstrict else ''}")
        if show_stats:
            line += (f"  [{verdict.vars}v/{verdict.clauses}c, "
                     f"ground {verdict.ground_ms:.1f} ms, "
                     f"solve {verdict.solve_ms:.1f} ms]")
        lines.append(line)
        total_ms += verdict.time_ms
        failures += 0 if verdict.passed else 1
    lines.append(f"--- {total_ms:.3f} ms ---")
    if failures == 0:
        lines.append("======= ALL TESTS PASS =======")
    else:
        lines.append(f"======= {failures} TEST(S) FAILED =======")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Machine-readable report + determinism digest
# ----------------------------------------------------------------------
def _verdict_projection(verdicts: Sequence[TestVerdict]) -> List[Dict]:
    """The deterministic (timing-free, engine-independent) view of a
    suite run: what must be byte-identical across job counts and solver
    modes."""
    return [
        {
            "name": v.name,
            "observable": v.observable,
            "permitted_sc": v.permitted_sc,
            "passed": v.passed,
            "overstrict": v.overstrict,
        }
        for v in verdicts
    ]


def suite_digest(verdicts: Sequence[TestVerdict]) -> str:
    """SHA-256 over the deterministic verdict projection."""
    canonical = json.dumps(_verdict_projection(verdicts), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def suite_report_json(verdicts: Sequence[TestVerdict], model: str = "",
                      engine: str = "", jobs: int = 1) -> Dict:
    """The ``--report-json`` artifact: verdicts + per-test stats.

    ``digest`` covers only the verdict projection, so it is identical
    across ``--jobs`` values and solver engines; the per-test ``stats``
    (vars/clauses/timings) are diagnostic and may vary by engine/run.
    """
    return {
        "schema": "repro-check-suite/1",
        "model": model,
        "engine": engine,
        "jobs": jobs,
        "digest": suite_digest(verdicts),
        "failures": sum(0 if v.passed else 1 for v in verdicts),
        "tests": [
            dict(projection,
                 stats={
                     "vars": v.vars,
                     "clauses": v.clauses,
                     "iterations": v.iterations,
                     "time_ms": round(v.time_ms, 3),
                     "ground_ms": round(v.ground_ms, 3),
                     "solve_ms": round(v.solve_ms, 3),
                 })
            for projection, v in zip(_verdict_projection(verdicts), verdicts)
        ],
    }
