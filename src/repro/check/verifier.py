"""Litmus-suite verification against a µspec model (COATCheck's role).

For each test the verifier decides observability of the test's outcome
under the model and compares with the ISA-level SC reference:

* outcome forbidden by SC and unobservable  -> PASS (bug-free)
* outcome forbidden by SC but observable    -> FAIL (MCM violation!)
* outcome allowed by SC and observable      -> PASS (model not overstrict)
* outcome allowed by SC but unobservable    -> PASS with an
  ``overstrict`` flag (sound, but the model forbids more than SC does —
  possibly more than the hardware does).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..litmus import LitmusTest
from ..uspec import Model
from .solver import ObservabilityResult, UhbGraph, solve_observability


@dataclass
class TestVerdict:
    name: str
    observable: bool
    permitted_sc: bool
    time_ms: float
    iterations: int
    graph: Optional[UhbGraph] = None

    @property
    def passed(self) -> bool:
        return self.permitted_sc or not self.observable

    @property
    def overstrict(self) -> bool:
        return self.permitted_sc and not self.observable

    def __repr__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        flag = " (overstrict)" if self.overstrict else ""
        return (f"TestVerdict({self.name}: {status}{flag}, "
                f"observable={self.observable}, sc_permits={self.permitted_sc}, "
                f"{self.time_ms:.1f} ms)")


class Checker:
    """Verifies litmus tests against one synthesized µspec model."""

    def __init__(self, model: Model, keep_graphs: bool = False):
        self.model = model
        self.keep_graphs = keep_graphs

    def check_outcome(self, test: LitmusTest) -> ObservabilityResult:
        """Raw observability of the test's final condition."""
        return solve_observability(self.model, test)

    def check_test(self, test: LitmusTest) -> TestVerdict:
        start = time.perf_counter()
        permitted = test.permitted_under_sc()
        result = self.check_outcome(test)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return TestVerdict(
            name=test.name,
            observable=result.observable,
            permitted_sc=permitted,
            time_ms=elapsed_ms,
            iterations=result.iterations,
            graph=result.graph if self.keep_graphs else None,
        )

    def check_suite(self, tests: Iterable[LitmusTest]) -> List[TestVerdict]:
        return [self.check_test(test) for test in tests]


def format_suite_report(verdicts: List[TestVerdict]) -> str:
    """Artifact-appendix style report (paper A.5)."""
    lines = []
    total_ms = 0.0
    failures = 0
    for verdict in verdicts:
        lines.append(f"{verdict.name + '.test':<24} {verdict.time_ms:10.3f} ms  "
                     f"{'PASS' if verdict.passed else 'FAIL'}"
                     f"{' (overstrict)' if verdict.overstrict else ''}")
        total_ms += verdict.time_ms
        failures += 0 if verdict.passed else 1
    lines.append(f"--- {total_ms:.3f} ms ---")
    if failures == 0:
        lines.append("======= ALL TESTS PASSES =======")
    else:
        lines.append(f"======= {failures} TEST(S) FAILED =======")
    return "\n".join(lines)
