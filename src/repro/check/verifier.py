"""Litmus-suite verification against a µspec model (COATCheck's role).

For each test the verifier decides observability of the test's outcome
under the model and compares with the ISA-level SC reference:

* outcome forbidden by SC and unobservable  -> PASS (bug-free)
* outcome forbidden by SC but observable    -> FAIL (MCM violation!)
* outcome allowed by SC and observable      -> PASS (model not overstrict)
* outcome allowed by SC but unobservable    -> PASS with an
  ``overstrict`` flag (sound, but the model forbids more than SC does —
  possibly more than the hardware does).

A check may also run out of budget (``--timeout`` / conflict limits):
the verdict then carries status ``TIMEOUT`` or ``UNKNOWN`` and is
consumed *conservatively* — it is never a PASS, never journaled, and
"ALL TESTS PASS" requires every test decided.

Two interchangeable solving engines (verdict-identical, pinned by the
engine-equivalence tests): ``fresh`` grounds and solves each test from
scratch; ``incremental`` grounds the program once and decides the final
condition as an assumption flip (:mod:`repro.check.incremental`).
``check_suite(tests, jobs=N)`` fans tests out through the shared
resilience pool (:mod:`repro.resilience.pool`) with deterministic,
input-ordered results that survive worker crashes and hangs.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..litmus import LitmusTest
from ..resilience import (
    DECIDED,
    Budget,
    FaultPlan,
    PoolStats,
    run_tasks,
    worker_state,
)
from ..uspec import Model
from .solver import ObservabilityResult, UhbGraph, solve_observability

ENGINES = ("auto", "fresh", "incremental", "incremental-seq")


def resolve_suite_engine(engine: str) -> str:
    """``auto`` → ``fresh`` for the litmus suite: each test decides a
    single condition, so the incremental engine's symbolic grounding is
    pure overhead here (measured ~2× slower on the 56-test suite; the
    sweep's auto resolves the other way).  ``incremental-seq`` is a
    sweep-only A/B distinction — for single-condition tests it is the
    incremental engine."""
    if engine == "auto":
        return "fresh"
    if engine == "incremental-seq":
        return "incremental"
    return engine


@dataclass
class TestVerdict:
    name: str
    observable: bool
    permitted_sc: bool
    time_ms: float
    iterations: int
    graph: Optional[UhbGraph] = None
    vars: int = 0
    clauses: int = 0
    ground_ms: float = 0.0
    solve_ms: float = 0.0
    #: DECIDED, or TIMEOUT/UNKNOWN when the check's budget expired
    status: str = DECIDED
    # --profile-sat counters (zero unless the engine reported them)
    sat_propagations: int = 0
    sat_conflicts: int = 0
    sat_decisions: int = 0
    sat_reductions: int = 0
    arena_bytes: int = 0
    batch_shared_levels: int = 0
    batch_assumption_levels: int = 0

    @property
    def decided(self) -> bool:
        return self.status == DECIDED

    @property
    def passed(self) -> bool:
        """Conservative: an undecided test never counts as a PASS."""
        return self.decided and (self.permitted_sc or not self.observable)

    @property
    def failed(self) -> bool:
        """A decided MCM violation (distinct from merely undecided)."""
        return self.decided and self.observable and not self.permitted_sc

    @property
    def overstrict(self) -> bool:
        return self.decided and self.permitted_sc and not self.observable

    def __repr__(self) -> str:
        if not self.decided:
            status = self.status
        else:
            status = "PASS" if self.passed else "FAIL"
        flag = " (overstrict)" if self.overstrict else ""
        return (f"TestVerdict({self.name}: {status}{flag}, "
                f"observable={self.observable}, sc_permits={self.permitted_sc}, "
                f"{self.time_ms:.1f} ms)")


def _check_one_worker(test: LitmusTest) -> TestVerdict:
    """Pool task: check one litmus test against the worker's checker."""
    state = worker_state()
    checker = state.get("checker")
    if checker is None:
        checker = Checker(state["model"],
                          keep_graphs=state["keep_graphs"],
                          engine=state["engine"],
                          order_encoding=state["order_encoding"],
                          budget=state.get("budget"),
                          sat_core=state.get("sat_core", "arena"))
        state["checker"] = checker
    return checker.check_test(test)


class Checker:
    """Verifies litmus tests against one synthesized µspec model."""

    def __init__(self, model: Model, keep_graphs: bool = False,
                 engine: str = "fresh", order_encoding: str = "components",
                 budget: Optional[Budget] = None, sat_core: str = "arena"):
        if engine not in ENGINES:
            from ..errors import CheckError
            raise CheckError(f"unknown check engine {engine!r} "
                             f"(expected one of {ENGINES})")
        self.model = model
        self.keep_graphs = keep_graphs
        self.engine = engine
        #: what actually runs (``auto`` resolved); recorded in reports
        self.engine_used = resolve_suite_engine(engine)
        self.order_encoding = order_encoding
        self.budget = budget
        self.sat_core = sat_core

    def check_outcome(self, test: LitmusTest) -> ObservabilityResult:
        """Raw observability of the test's final condition."""
        clock = self.budget.start() if self.budget else None
        if self.engine_used == "incremental":
            from .incremental import ProgramSolver
            instance = ProgramSolver(self.model, test,
                                     order_encoding=self.order_encoding,
                                     sat_core=self.sat_core)
            result = instance.decide(test.final,
                                     keep_graph=self.keep_graphs,
                                     clock=clock)
            if instance.solver is not None:
                instance.stats.absorb_solver(instance.solver)
            return result
        return solve_observability(self.model, test,
                                   order_encoding=self.order_encoding,
                                   clock=clock, sat_core=self.sat_core)

    def check_test(self, test: LitmusTest) -> TestVerdict:
        start = time.perf_counter()
        permitted = test.permitted_under_sc()
        result = self.check_outcome(test)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        stats = result.stats
        return TestVerdict(
            name=test.name,
            observable=result.observable,
            permitted_sc=permitted,
            time_ms=elapsed_ms,
            iterations=result.iterations,
            graph=result.graph if self.keep_graphs else None,
            vars=stats.vars,
            clauses=stats.clauses,
            ground_ms=stats.ground_ms,
            solve_ms=stats.solve_ms,
            status=result.status,
            sat_propagations=stats.sat_propagations,
            sat_conflicts=stats.sat_conflicts,
            sat_decisions=stats.sat_decisions,
            sat_reductions=stats.sat_reductions,
            arena_bytes=stats.arena_bytes,
            batch_shared_levels=stats.batch_shared_levels,
            batch_assumption_levels=stats.batch_assumption_levels,
        )

    def check_suite(self, tests: Iterable[LitmusTest],
                    jobs: int = 1,
                    fault_plan: Optional[FaultPlan] = None,
                    on_result: Optional[Callable[[int, TestVerdict], None]]
                    = None,
                    pool_stats: Optional[PoolStats] = None
                    ) -> List[TestVerdict]:
        """Check every test; ``jobs`` follows the repo convention
        (``<=0`` = all cores, ``1`` = serial) and results are in input
        order, identical for any job count.  Worker crashes and hangs
        are retried / recomputed inline by the resilience pool;
        ``on_result`` fires once per completed test (the journaling
        hook), and ``fault_plan`` injects deterministic faults for the
        fault-tolerance tests.
        """
        tests = list(tests)
        return run_tasks(
            tests, _check_one_worker, self.check_test, jobs,
            state={"model": self.model, "keep_graphs": self.keep_graphs,
                   "engine": self.engine,
                   "order_encoding": self.order_encoding,
                   "budget": self.budget,
                   "sat_core": self.sat_core},
            fault_plan=fault_plan,
            validate=lambda verdict: isinstance(verdict, TestVerdict),
            on_result=on_result,
            stats=pool_stats)


def format_suite_report(verdicts: List[TestVerdict],
                        show_stats: bool = True) -> str:
    """Artifact-appendix style report (paper A.5), with per-test
    encoding/solve statistics."""
    lines = []
    total_ms = 0.0
    failures = 0
    undecided = 0
    for verdict in verdicts:
        if not verdict.decided:
            status = verdict.status
        else:
            status = "PASS" if verdict.passed else "FAIL"
        line = (f"{verdict.name + '.test':<24} {verdict.time_ms:10.3f} ms  "
                f"{status}"
                f"{' (overstrict)' if verdict.overstrict else ''}")
        if show_stats:
            line += (f"  [{verdict.vars}v/{verdict.clauses}c, "
                     f"ground {verdict.ground_ms:.1f} ms, "
                     f"solve {verdict.solve_ms:.1f} ms]")
        lines.append(line)
        total_ms += verdict.time_ms
        failures += 1 if verdict.failed else 0
        undecided += 0 if verdict.decided else 1
    lines.append(f"--- {total_ms:.3f} ms ---")
    if failures == 0 and undecided == 0:
        lines.append("======= ALL TESTS PASS =======")
    else:
        parts = []
        if failures:
            parts.append(f"{failures} TEST(S) FAILED")
        if undecided:
            parts.append(f"{undecided} UNDECIDED (budget exhausted)")
        lines.append(f"======= {', '.join(parts)} =======")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Machine-readable report + determinism digest
# ----------------------------------------------------------------------
def _verdict_projection(verdicts: Sequence[TestVerdict]) -> List[Dict]:
    """The deterministic (timing-free, engine-independent) view of a
    suite run: what must be byte-identical across job counts, solver
    modes, injected faults, and interrupt/resume."""
    return [
        {
            "name": v.name,
            "status": v.status,
            "observable": v.observable,
            "permitted_sc": v.permitted_sc,
            "passed": v.passed,
            "overstrict": v.overstrict,
        }
        for v in verdicts
    ]


def suite_digest(verdicts: Sequence[TestVerdict]) -> str:
    """SHA-256 over the deterministic verdict projection."""
    canonical = json.dumps(_verdict_projection(verdicts), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def suite_sat_profile(verdicts: Sequence[TestVerdict]) -> Dict:
    """Aggregate the per-test SAT counters (``--profile-sat``)."""
    profile = {
        "sat_propagations": sum(v.sat_propagations for v in verdicts),
        "sat_conflicts": sum(v.sat_conflicts for v in verdicts),
        "sat_decisions": sum(v.sat_decisions for v in verdicts),
        "sat_reductions": sum(v.sat_reductions for v in verdicts),
        "arena_bytes": max((v.arena_bytes for v in verdicts), default=0),
        "batch_shared_levels": sum(v.batch_shared_levels for v in verdicts),
        "batch_assumption_levels": sum(v.batch_assumption_levels
                                       for v in verdicts),
    }
    total = profile["batch_assumption_levels"]
    profile["batch_prefix_share"] = round(
        profile["batch_shared_levels"] / total, 4) if total else 0.0
    return profile


def suite_report_json(verdicts: Sequence[TestVerdict], model: str = "",
                      engine: str = "", jobs: int = 1,
                      deterministic: bool = False,
                      quarantined_records: int = 0,
                      engine_used: str = "", sat_core: str = "",
                      profile_sat: bool = False) -> Dict:
    """The ``--report-json`` artifact: verdicts + per-test stats.

    ``digest`` covers only the verdict projection, so it is identical
    across ``--jobs`` values, solver engines, injected faults, and
    interrupt/resume; the per-test ``stats`` (vars/clauses/timings) are
    diagnostic and may vary by engine/run.  ``deterministic=True``
    drops everything run-dependent (timings, the jobs count) so the
    whole file is byte-identical across runs — the pipeline's
    resume-equivalence guarantee.  ``engine_used`` records what an
    ``auto`` engine resolved to; ``profile_sat`` adds the aggregated
    SAT counters (run-dependent — suppressed in deterministic mode).
    """
    report = {
        "schema": "repro-check-suite/3",
        "model": model,
        "engine": engine,
        "engine_used": engine_used or engine,
        "sat_core": sat_core,
        "digest": suite_digest(verdicts),
        "failures": sum(1 if v.failed else 0 for v in verdicts),
        "undecided": sum(0 if v.decided else 1 for v in verdicts),
        "tests": [
            dict(projection,
                 stats={
                     "vars": v.vars,
                     "clauses": v.clauses,
                     "iterations": v.iterations,
                 })
            for projection, v in zip(_verdict_projection(verdicts), verdicts)
        ],
    }
    if not deterministic:
        report["jobs"] = jobs
        # Run-dependent resilience diagnostics: a resumed run that had
        # to quarantine a corrupt journal tail says so instead of
        # silently recomputing.  Excluded from the deterministic report
        # (whose bytes must match across fresh/resumed runs).
        report["quarantined_records"] = quarantined_records
        if profile_sat:
            report["sat_profile"] = suite_sat_profile(verdicts)
        for entry, v in zip(report["tests"], verdicts):
            entry["stats"].update({
                "time_ms": round(v.time_ms, 3),
                "ground_ms": round(v.ground_ms, 3),
                "solve_ms": round(v.solve_ms, 3),
            })
    return report
