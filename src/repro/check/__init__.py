"""Check-style µhb verification of µspec models against litmus tests."""

from .exhaustive import (
    SWEEP_ENGINES,
    ExactnessReport,
    enumerate_programs,
    enumerate_sweep_programs,
    normalize_limit,
    resolve_sweep_engine,
    verify_exactness,
)
from .incremental import ProgramSolver, SymbolicContext
from .instance import GroundContext, Microop
from .journal import (
    SuiteJournal,
    SweepJournal,
    model_fingerprint,
    program_fingerprint,
    test_fingerprint,
)
from .render import render_ascii
from .runner import SuiteRunResult, run_suite, run_sweep
from .solver import (
    ObservabilityResult,
    SolveStats,
    UhbGraph,
    solve_observability,
)
from .verifier import (
    ENGINES,
    Checker,
    TestVerdict,
    format_suite_report,
    resolve_suite_engine,
    suite_digest,
    suite_report_json,
    suite_sat_profile,
)

__all__ = [
    "Microop",
    "verify_exactness",
    "ExactnessReport",
    "enumerate_programs",
    "enumerate_sweep_programs",
    "normalize_limit",
    "GroundContext",
    "solve_observability",
    "ObservabilityResult",
    "SolveStats",
    "UhbGraph",
    "Checker",
    "TestVerdict",
    "ProgramSolver",
    "SymbolicContext",
    "SuiteJournal",
    "SweepJournal",
    "SuiteRunResult",
    "run_suite",
    "run_sweep",
    "model_fingerprint",
    "program_fingerprint",
    "test_fingerprint",
    "format_suite_report",
    "suite_digest",
    "suite_report_json",
    "suite_sat_profile",
    "render_ascii",
    "ENGINES",
    "SWEEP_ENGINES",
    "resolve_suite_engine",
    "resolve_sweep_engine",
]
