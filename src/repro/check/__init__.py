"""Check-style µhb verification of µspec models against litmus tests."""

from .exhaustive import (
    ExactnessReport,
    enumerate_programs,
    enumerate_sweep_programs,
    normalize_limit,
    verify_exactness,
)
from .incremental import ProgramSolver, SymbolicContext
from .instance import GroundContext, Microop
from .journal import (
    SuiteJournal,
    SweepJournal,
    model_fingerprint,
    program_fingerprint,
    test_fingerprint,
)
from .render import render_ascii
from .runner import SuiteRunResult, run_suite, run_sweep
from .solver import (
    ObservabilityResult,
    SolveStats,
    UhbGraph,
    solve_observability,
)
from .verifier import (
    Checker,
    TestVerdict,
    format_suite_report,
    suite_digest,
    suite_report_json,
)

__all__ = [
    "Microop",
    "verify_exactness",
    "ExactnessReport",
    "enumerate_programs",
    "enumerate_sweep_programs",
    "normalize_limit",
    "GroundContext",
    "solve_observability",
    "ObservabilityResult",
    "SolveStats",
    "UhbGraph",
    "Checker",
    "TestVerdict",
    "ProgramSolver",
    "SymbolicContext",
    "SuiteJournal",
    "SweepJournal",
    "SuiteRunResult",
    "run_suite",
    "run_sweep",
    "model_fingerprint",
    "program_fingerprint",
    "test_fingerprint",
    "format_suite_report",
    "suite_digest",
    "suite_report_json",
    "render_ascii",
]
