"""Check-style µhb verification of µspec models against litmus tests."""

from .exhaustive import ExactnessReport, enumerate_programs, verify_exactness
from .instance import GroundContext, Microop
from .render import render_ascii
from .solver import ObservabilityResult, UhbGraph, solve_observability
from .verifier import Checker, TestVerdict, format_suite_report

__all__ = [
    "Microop",
    "verify_exactness",
    "ExactnessReport",
    "enumerate_programs",
    "GroundContext",
    "solve_observability",
    "ObservabilityResult",
    "UhbGraph",
    "Checker",
    "TestVerdict",
    "format_suite_report",
    "render_ascii",
]
