"""Crash-safe, resumable entry points for Check-layer verification.

:func:`run_suite` and :func:`run_sweep` wrap the raw verifier/sweep in
the shared resilience machinery so one call gives:

* **journaling** — every completed verdict is appended (checksummed,
  fsynced) to a :class:`repro.check.journal.SuiteJournal` /
  :class:`SweepJournal` the moment it is finalized, so a crash or
  Ctrl-C loses at most in-flight work;
* **resume** — ``resume=True`` replays the journal and only the
  still-undecided tests/programs are re-executed.  Verdicts are keyed
  by content fingerprints of (model, test/program), so a resumed run
  against a different model replays nothing;
* **interrupt checkpointing** — ``KeyboardInterrupt`` (Ctrl-C, a
  SIGTERM converted by the CLI, or an injected fault) commits the
  journal and surfaces as :class:`repro.errors.InterruptedRun`
  carrying the completed prefix, so callers can print partial results
  and a resume recipe instead of losing the run;
* **fault tolerance** — worker crashes/hangs retry through
  :func:`repro.resilience.pool.run_tasks`; verdicts are identical to a
  fault-free run (the fault-tolerance integration tests pin this with
  digest parity).

The determinism invariant the whole layer maintains: job counts,
engines, injected faults, and interrupt/resume may change wall-clock
time and recovery statistics — never verdicts or report digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..errors import InterruptedRun
from ..litmus import LitmusTest
from ..mcm.events import Program
from ..resilience import Budget, FaultPlan, PoolStats, run_tasks, worker_state
from ..uspec import Model
from .exhaustive import (
    ExactnessReport,
    ProgramResult,
    _check_program,
    enumerate_sweep_programs,
    merge_program_results,
    normalize_limit,
)
from .journal import (
    SuiteJournal,
    SweepJournal,
    model_fingerprint,
    program_fingerprint,
    test_fingerprint,
)
from .verifier import Checker, TestVerdict


@dataclass
class SuiteRunResult:
    """One :func:`run_suite` invocation's outcome."""

    verdicts: List[TestVerdict] = field(default_factory=list)
    #: verdicts replayed from the resume journal (no solver work)
    resumed: int = 0
    pool_stats: PoolStats = field(default_factory=PoolStats)
    journal_path: Optional[str] = None
    #: corrupt/torn journal records dropped (and re-executed) on resume
    quarantined_records: int = 0
    #: where the dropped journal bytes were moved (None if clean)
    quarantined_path: Optional[str] = None
    #: the engine that actually ran (``auto`` resolved by the Checker)
    engine_used: str = ""


def run_suite(model: Model, tests: Iterable[LitmusTest], *,
              jobs: int = 1, engine: str = "fresh",
              order_encoding: str = "components",
              keep_graphs: bool = False,
              budget: Optional[Budget] = None,
              journal_path: Optional[str] = None,
              resume: bool = False,
              fault_plan: Optional[FaultPlan] = None,
              sat_core: str = "arena") -> SuiteRunResult:
    """Check a litmus suite crash-safely; see the module docstring.

    Raises :class:`InterruptedRun` (partial verdicts attached, journal
    committed) if interrupted; any other error propagates after the
    journal is closed (committed).
    """
    tests = list(tests)
    checker = Checker(model, keep_graphs=keep_graphs, engine=engine,
                      order_encoding=order_encoding, budget=budget,
                      sat_core=sat_core)
    result = SuiteRunResult(verdicts=[], journal_path=journal_path,
                            engine_used=checker.engine_used)
    journal = None
    fingerprints: List[str] = []
    verdicts: List[Optional[TestVerdict]] = [None] * len(tests)
    if journal_path:
        fp_model = model_fingerprint(model)
        fingerprints = [test_fingerprint(fp_model, test) for test in tests]
        journal = SuiteJournal(journal_path, resume=resume)
        result.quarantined_records = journal.quarantined_records
        result.quarantined_path = journal.quarantined
        for index, fingerprint in enumerate(fingerprints):
            replayed = journal.lookup(fingerprint)
            if replayed is not None:
                verdicts[index] = replayed
                result.resumed += 1
    pending = [index for index in range(len(tests))
               if verdicts[index] is None]

    def on_result(position: int, verdict: TestVerdict) -> None:
        index = pending[position]
        verdicts[index] = verdict
        if journal is not None:
            journal.record(fingerprints[index], verdict)
            journal.commit()

    try:
        checker.check_suite([tests[index] for index in pending], jobs,
                            fault_plan=fault_plan, on_result=on_result,
                            pool_stats=result.pool_stats)
    except KeyboardInterrupt as exc:
        if journal is not None:
            journal.commit()
        completed = [verdict for verdict in verdicts if verdict is not None]
        raise InterruptedRun(
            f"check interrupted after {len(completed)}/{len(tests)} "
            f"test(s)", partial=completed,
            resumable=journal is not None) from exc
    finally:
        if journal is not None:
            journal.close()
    result.verdicts = [verdict for verdict in verdicts if verdict is not None]
    return result


# ----------------------------------------------------------------------
# Exhaustive sweep
# ----------------------------------------------------------------------
def _sweep_one_worker(payload) -> ProgramResult:
    """Pool task: sweep one program against the worker's model."""
    state = worker_state()
    program, include_final_memory = payload
    return _check_program(state["model"], program, include_final_memory,
                          state["engine"], state["order_encoding"],
                          budget=state.get("budget"),
                          sat_core=state.get("sat_core", "arena"))


def _valid_program_result(result) -> bool:
    return (isinstance(result, tuple) and len(result) == 4
            and isinstance(result[0], int)
            and all(isinstance(part, list) for part in result[1:]))


def run_sweep(model: Model, *, max_threads: int = 2, max_len: int = 2,
              addresses: Sequence[str] = ("x", "y"),
              include_final_memory: bool = True,
              limit: Optional[int] = None,
              jobs: int = 1, engine: str = "incremental",
              order_encoding: str = "components",
              budget: Optional[Budget] = None,
              journal_path: Optional[str] = None,
              resume: bool = False,
              fault_plan: Optional[FaultPlan] = None,
              pool_stats: Optional[PoolStats] = None,
              programs: Optional[Sequence[Program]] = None,
              sat_core: str = "arena") -> ExactnessReport:
    """Exhaustive sweep with program-granular journaling and resume.

    Raises :class:`InterruptedRun` (partial report attached, journal
    committed) if interrupted.  The returned report's :meth:`digest`
    is identical across job counts, engines, faults, and resume.

    ``programs`` substitutes an explicit program list (e.g. a generated
    corpus chunk) for the built-in shape enumeration; journal keys are
    content fingerprints either way, so chunked corpus sweeps resume
    against the same journal.  ``limit`` (0/None = unlimited) caps the
    prefix in both modes.
    """
    if programs is None:
        programs = enumerate_sweep_programs(max_threads, max_len, addresses,
                                            limit)
    else:
        programs = list(programs)
        cap = normalize_limit(limit)
        if cap is not None:
            programs = programs[:cap]
    report = ExactnessReport(programs=len(programs))
    results: List[Optional[ProgramResult]] = [None] * len(programs)
    journal = None
    fingerprints: List[str] = []
    if journal_path:
        fp_model = model_fingerprint(model)
        fingerprints = [program_fingerprint(fp_model, program)
                        for program in programs]
        journal = SweepJournal(journal_path, resume=resume)
        report.quarantined_records = journal.quarantined_records
        report.quarantined_path = journal.quarantined
        for index, fingerprint in enumerate(fingerprints):
            replayed = journal.lookup(fingerprint)
            if replayed is not None:
                checked, unsound, overstrict = replayed
                results[index] = (checked, unsound, overstrict, [])
                report.resumed += 1
    pending = [index for index in range(len(programs))
               if results[index] is None]

    def on_result(position: int, result: ProgramResult) -> None:
        index = pending[position]
        results[index] = result
        if journal is not None:
            checked, unsound, overstrict, undecided = result
            journal.record(fingerprints[index], checked, unsound,
                           overstrict, undecided)
            journal.commit()

    try:
        run_tasks(
            [(programs[index], include_final_memory) for index in pending],
            _sweep_one_worker,
            lambda payload: _check_program(model, payload[0], payload[1],
                                           engine, order_encoding,
                                           budget=budget, sat_core=sat_core),
            jobs,
            state={"model": model, "engine": engine,
                   "order_encoding": order_encoding, "budget": budget,
                   "sat_core": sat_core},
            fault_plan=fault_plan,
            validate=_valid_program_result,
            on_result=on_result,
            stats=pool_stats)
    except KeyboardInterrupt as exc:
        if journal is not None:
            journal.commit()
        merge_program_results(report, results)
        done = sum(1 for result in results if result is not None)
        raise InterruptedRun(
            f"sweep interrupted after {done}/{len(programs)} program(s)",
            partial=report, resumable=journal is not None) from exc
    finally:
        if journal is not None:
            journal.close()
    merge_program_results(report, results)
    return report
