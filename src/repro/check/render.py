"""Terminal rendering of µhb graphs (a text-mode Fig. 1b).

Lays instructions out as columns (program order left to right, grouped
by core) and µhb locations as rows (stage order top to bottom), then
lists the happens-before edges grouped by label — readable without
GraphViz.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .solver import UhbGraph


def render_ascii(graph: UhbGraph, max_width: int = 100) -> str:
    """Render a witness µhb graph as text."""
    uops = sorted(graph.ctx.uops, key=lambda u: (u.core, u.index))
    columns = [uop.uid for uop in uops]
    labels = {uop.uid: uop.label() for uop in uops}
    locations = [loc for loc in graph.stage_order
                 if any(loc in graph.nodes_of.get(uid, []) for uid in columns)]

    col_width = max(12, max((len(l) for l in labels.values()), default=12) + 2)
    col_width = min(col_width, max_width // max(len(columns), 1))
    loc_width = max((len(loc) for loc in locations), default=8) + 2

    lines: List[str] = []
    header = " " * loc_width + "".join(
        f"{labels[uid][:col_width - 1]:<{col_width}}" for uid in columns)
    lines.append(header)
    lines.append("-" * min(len(header), max_width))
    for loc in locations:
        row = f"{loc:<{loc_width}}"
        for uid in columns:
            mark = "●" if loc in graph.nodes_of.get(uid, []) else "·"
            row += f"{mark:<{col_width}}"
        lines.append(row)
    lines.append("")

    by_label: Dict[str, List[Tuple]] = {}
    for src, dst, label in sorted(graph.edges):
        by_label.setdefault(label or "uhb", []).append((src, dst))
    short = {uid: f"i{uid}" for uid in columns}
    for label in sorted(by_label):
        edges = by_label[label]
        rendered = ", ".join(
            f"{short.get(s[0], s[0])}.{s[1]} -> {short.get(d[0], d[0])}.{d[1]}"
            for s, d in edges[:12])
        suffix = f" (+{len(edges) - 12} more)" if len(edges) > 12 else ""
        lines.append(f"{label:>9}: {rendered}{suffix}")
    return "\n".join(lines)
