"""Exhaustive small-program verification (a PipeProof-style sweep).

The paper (section 7) names PipeProof integration — proving MCM
correctness over *all* programs rather than a litmus suite — as future
work. This module takes a bounded step in that direction: enumerate
every program shape up to a size bound, every final condition over its
loads (and final memory), and check that the µspec model's
observability verdict matches the SC reference exactly.

Agreement over the full bounded program space is a much stronger
statement than a 56-test suite: it shows the synthesized model is both
sound (forbidden outcomes unobservable) and precise (allowed outcomes
observable) for every small program.

The sweep is where the incremental engine pays off: each program has
one CNF but dozens of final conditions, so ``engine="incremental"``
grounds once per program and decides each condition as an assumption
flip (:class:`repro.check.incremental.ProgramSolver`).  ``jobs=N``
distributes whole programs over the shared resilience pool; results
are merged in enumeration order, so the report is identical for any
job count (and under injected worker crashes/hangs).

Budgeted sweeps (``budget=``) degrade gracefully: a condition whose
solve runs out of budget lands in ``report.undecided`` and blocks the
EXACT claim — an exhausted budget is never silently a pass.  The
crash-safe/resumable entry point is
:func:`repro.check.runner.run_sweep`; :func:`verify_exactness`
delegates to it when journaling is requested.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import CheckError
from ..litmus import LitmusTest
from ..mcm import sc_outcomes
from ..mcm.events import Access, Program, R, W
from ..resilience import Budget
from .solver import solve_observability

#: one program's sweep outcome: (checked, unsound, overstrict, undecided)
ProgramResult = Tuple[int, List[Tuple[str, Tuple]], List[Tuple[str, Tuple]],
                      List[Tuple[str, Tuple]]]


@dataclass
class ExactnessReport:
    """Result of one exhaustive sweep."""

    programs: int = 0
    outcomes_checked: int = 0
    unsound: List[Tuple[str, Tuple]] = field(default_factory=list)
    overstrict: List[Tuple[str, Tuple]] = field(default_factory=list)
    #: conditions whose solve budget expired (conservative: blocks EXACT)
    undecided: List[Tuple[str, Tuple]] = field(default_factory=list)
    #: programs replayed from a resume journal (diagnostic, not digested)
    resumed: int = 0
    #: corrupt/torn journal records dropped (and re-swept) on resume
    quarantined_records: int = 0
    #: where the dropped journal bytes were moved (None if clean)
    quarantined_path: Optional[str] = None

    @property
    def exact(self) -> bool:
        return not self.unsound and not self.overstrict and \
            not self.undecided

    def summary(self) -> str:
        if self.exact:
            status = "EXACT"
        else:
            parts = [f"{len(self.unsound)} unsound",
                     f"{len(self.overstrict)} overstrict"]
            if self.undecided:
                parts.append(f"{len(self.undecided)} undecided")
            status = " / ".join(parts)
        notes = []
        if self.resumed:
            notes.append(f"{self.resumed} resumed")
        if self.quarantined_records:
            notes.append(f"{self.quarantined_records} journal record(s) "
                         f"quarantined")
        note = f" ({', '.join(notes)})" if notes else ""
        return (f"{self.programs} programs, {self.outcomes_checked} outcomes "
                f"checked{note}: {status}")

    def digest(self) -> str:
        """SHA-256 over the deterministic projection of the sweep:
        identical across job counts, engines, injected faults, and
        interrupt/resume (timings and resume counters excluded)."""
        canonical = json.dumps({
            "programs": self.programs,
            "outcomes_checked": self.outcomes_checked,
            "unsound": [formatted for formatted, _ in self.unsound],
            "overstrict": [formatted for formatted, _ in self.overstrict],
            "undecided": [formatted for formatted, _ in self.undecided],
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def enumerate_programs(max_threads: int = 2, max_len: int = 2,
                       addresses: Sequence[str] = ("x", "y")) -> Iterator[Program]:
    """All programs with up to ``max_threads`` threads of up to
    ``max_len`` accesses each, over the given addresses (stores write 1;
    value variety is covered by the co/final-memory conditions)."""
    slots: List[Access] = []
    for addr in addresses:
        slots.append(W(addr, 1))
        slots.append(R(addr, "r?"))

    def thread_shapes(length: int):
        return itertools.product(slots, repeat=length)

    for num_threads in range(1, max_threads + 1):
        lengths = itertools.product(range(1, max_len + 1), repeat=num_threads)
        for shape in lengths:
            pools = [list(thread_shapes(n)) for n in shape]
            for combo in itertools.product(*pools):
                reg = 0
                threads = []
                for thread in combo:
                    accesses = []
                    for access in thread:
                        if access.kind == "R":
                            reg += 1
                            accesses.append(R(access.addr, f"r{reg}"))
                        else:
                            accesses.append(access)
                    threads.append(tuple(accesses))
                yield tuple(threads)


def _canonical(program: Program) -> Tuple:
    """Canonical form modulo thread permutation."""
    return tuple(sorted(
        tuple((a.kind, a.addr) for a in thread) for thread in program))


def enumerate_conditions(program: Program) -> Iterator[Tuple]:
    """All full assignments of load results (0/1) for the program."""
    loads = [(tid, access.reg) for tid, thread in enumerate(program)
             for access in thread if access.kind == "R"]
    if not loads:
        # Pure-write programs: distinguish nothing; the write-serialization
        # cases are covered by programs with observer loads and by the
        # final-memory sweep in verify_exactness.
        yield tuple()
        return
    for values in itertools.product((0, 1), repeat=len(loads)):
        yield tuple((key, value) for key, value in zip(loads, values))


def _program_conditions(program: Program,
                        include_final_memory: bool) -> List[Tuple]:
    """All non-empty final conditions swept for one program."""
    conditions = list(enumerate_conditions(program))
    if include_final_memory:
        written = sorted({a.addr for t in program for a in t if a.kind == "W"})
        extended = []
        for condition in conditions:
            extended.append(condition)
            for addr in written:
                for value in (0, 1):
                    extended.append(condition + (((-1, addr), value),))
        conditions = extended
    return [condition for condition in conditions if condition]


#: engines verify_exactness accepts; ``auto`` resolves per workload
SWEEP_ENGINES = ("auto", "fresh", "incremental", "incremental-seq")


def resolve_sweep_engine(engine: str) -> str:
    """``auto`` → ``incremental`` for the sweep: one CNF per program
    amortized over dozens of conditions is the measured-fastest path
    (the suite's auto resolves differently — see
    :func:`repro.check.verifier.resolve_suite_engine`)."""
    return "incremental" if engine == "auto" else engine


def _check_program(model, program: Program,
                   include_final_memory: bool, engine: str,
                   order_encoding: str,
                   budget: Optional[Budget] = None,
                   sat_core: str = "arena") -> ProgramResult:
    """Sweep every condition of one program; returns
    (outcomes_checked, unsound, overstrict, undecided).  The budget is
    per *condition*; an expired solve lands in ``undecided`` rather
    than claiming soundness or strictness either way."""
    engine = resolve_sweep_engine(engine)
    reference = sc_outcomes(program)
    conditions = _program_conditions(program, include_final_memory)
    checked = 0
    unsound: List[Tuple[str, Tuple]] = []
    overstrict: List[Tuple[str, Tuple]] = []
    undecided: List[Tuple[str, Tuple]] = []
    instance = None
    if engine in ("incremental", "incremental-seq") and conditions:
        from .incremental import ProgramSolver
        instance = ProgramSolver(
            model, LitmusTest("sweep", program, conditions[0]),
            order_encoding=order_encoding, sat_core=sat_core)
    # One solve_batch call decides every condition sharing the common
    # assumption prefix; budgeted runs need a per-condition clock, so
    # they (and the incremental-seq A/B engine) stay sequential.
    batch = None
    if instance is not None and budget is None and engine == "incremental":
        batch = instance.decide_batch(conditions)
    for index, condition in enumerate(conditions):
        test = LitmusTest("sweep", program, condition)
        permitted = any(test.outcome_matches(o) for o in reference)
        if batch is not None:
            result = batch[index]
        else:
            clock = budget.start() if budget else None
            if instance is not None:
                result = instance.decide(condition, clock=clock)
            else:
                result = solve_observability(
                    model, test, order_encoding=order_encoding, clock=clock,
                    sat_core=sat_core)
        checked += 1
        if not result.decided:
            undecided.append((test.format(), condition))
        elif result.observable and not permitted:
            unsound.append((test.format(), condition))
        elif permitted and not result.observable:
            overstrict.append((test.format(), condition))
    return checked, unsound, overstrict, undecided


def normalize_limit(limit: Optional[int]) -> Optional[int]:
    """Pin down the sweep-limit convention in ONE place.

    ``None``, ``0``, and negative values all mean "no limit" (the CLI's
    ``--limit`` defaults to 0 = sweep everything; service jobs accept
    the same convention, so a raw ``limit: 0`` submission no longer
    sweeps zero programs). A positive value caps the program count.
    """
    if limit is None:
        return None
    limit = int(limit)
    return limit if limit > 0 else None


def enumerate_sweep_programs(max_threads: int = 2, max_len: int = 2,
                             addresses: Sequence[str] = ("x", "y"),
                             limit: Optional[int] = None) -> List[Program]:
    """The deduplicated, deterministically ordered program list one
    sweep covers (shared by :func:`verify_exactness` and the resumable
    runner, so journals key the exact same programs)."""
    limit = normalize_limit(limit)
    programs: List[Program] = []
    seen = set()
    for program in enumerate_programs(max_threads, max_len, addresses):
        canon = _canonical(program)
        if canon in seen:
            continue
        seen.add(canon)
        if limit is not None and len(programs) >= limit:
            break
        programs.append(program)
    return programs


def merge_program_results(report: ExactnessReport,
                          results: Sequence[Optional[ProgramResult]]) -> None:
    """Fold per-program results (enumeration order) into the report."""
    for result in results:
        if result is None:
            continue
        checked, unsound, overstrict, undecided = result
        report.outcomes_checked += checked
        report.unsound.extend(unsound)
        report.overstrict.extend(overstrict)
        report.undecided.extend(undecided)


def verify_exactness(model, max_threads: int = 2, max_len: int = 2,
                     addresses: Sequence[str] = ("x", "y"),
                     include_final_memory: bool = True,
                     limit: Optional[int] = None,
                     jobs: int = 1,
                     engine: str = "incremental",
                     order_encoding: str = "components",
                     budget: Optional[Budget] = None,
                     fault_plan=None,
                     journal_path: Optional[str] = None,
                     resume: bool = False,
                     programs: Optional[Sequence[Program]] = None,
                     sat_core: str = "arena") -> ExactnessReport:
    """Sweep all bounded programs/outcomes; compare the model against SC.

    ``limit`` bounds the number of programs (for incremental runs; 0 or
    ``None`` means unlimited — see :func:`normalize_limit`).  ``engine``
    picks the per-program decision procedure (``incremental``
    amortizes grounding across a program's conditions; ``fresh`` is the
    seed's one-solve-per-condition path — verdict-identical).  ``jobs``
    distributes programs over worker processes; the report is identical
    for any job count.  ``budget`` bounds each condition's solve
    (expiries land in ``report.undecided``); ``journal_path``/``resume``
    make the sweep crash-safe, and ``fault_plan`` injects deterministic
    worker faults for the resilience tests.  ``programs`` replaces the
    built-in shape enumeration with an explicit program list (e.g. a
    generated-corpus chunk); ``limit`` still caps the prefix swept.
    """
    if engine not in SWEEP_ENGINES:
        raise CheckError(f"unknown check engine {engine!r} "
                         f"(expected one of {SWEEP_ENGINES})")
    from .runner import run_sweep
    return run_sweep(model, max_threads=max_threads, max_len=max_len,
                     addresses=addresses,
                     include_final_memory=include_final_memory,
                     limit=limit, jobs=jobs, engine=engine,
                     order_encoding=order_encoding, budget=budget,
                     fault_plan=fault_plan, journal_path=journal_path,
                     resume=resume, programs=programs, sat_core=sat_core)
