"""Exhaustive small-program verification (a PipeProof-style sweep).

The paper (section 7) names PipeProof integration — proving MCM
correctness over *all* programs rather than a litmus suite — as future
work. This module takes a bounded step in that direction: enumerate
every program shape up to a size bound, every final condition over its
loads (and final memory), and check that the µspec model's
observability verdict matches the SC reference exactly.

Agreement over the full bounded program space is a much stronger
statement than a 56-test suite: it shows the synthesized model is both
sound (forbidden outcomes unobservable) and precise (allowed outcomes
observable) for every small program.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..litmus import LitmusTest
from ..mcm import sc_outcomes
from ..mcm.events import Access, Program, R, W
from ..uspec import Model
from .solver import solve_observability


@dataclass
class ExactnessReport:
    """Result of one exhaustive sweep."""

    programs: int = 0
    outcomes_checked: int = 0
    unsound: List[Tuple[str, Tuple]] = field(default_factory=list)
    overstrict: List[Tuple[str, Tuple]] = field(default_factory=list)

    @property
    def exact(self) -> bool:
        return not self.unsound and not self.overstrict

    def summary(self) -> str:
        status = "EXACT" if self.exact else \
            f"{len(self.unsound)} unsound / {len(self.overstrict)} overstrict"
        return (f"{self.programs} programs, {self.outcomes_checked} outcomes "
                f"checked: {status}")


def enumerate_programs(max_threads: int = 2, max_len: int = 2,
                       addresses: Sequence[str] = ("x", "y")) -> Iterator[Program]:
    """All programs with up to ``max_threads`` threads of up to
    ``max_len`` accesses each, over the given addresses (stores write 1;
    value variety is covered by the co/final-memory conditions)."""
    slots: List[Access] = []
    for addr in addresses:
        slots.append(W(addr, 1))
        slots.append(R(addr, "r?"))

    def thread_shapes(length: int):
        return itertools.product(slots, repeat=length)

    for num_threads in range(1, max_threads + 1):
        lengths = itertools.product(range(1, max_len + 1), repeat=num_threads)
        for shape in lengths:
            pools = [list(thread_shapes(n)) for n in shape]
            for combo in itertools.product(*pools):
                reg = 0
                threads = []
                for thread in combo:
                    accesses = []
                    for access in thread:
                        if access.kind == "R":
                            reg += 1
                            accesses.append(R(access.addr, f"r{reg}"))
                        else:
                            accesses.append(access)
                    threads.append(tuple(accesses))
                yield tuple(threads)


def _canonical(program: Program) -> Tuple:
    """Canonical form modulo thread permutation."""
    return tuple(sorted(
        tuple((a.kind, a.addr) for a in thread) for thread in program))


def enumerate_conditions(program: Program) -> Iterator[Tuple]:
    """All full assignments of load results (0/1) for the program."""
    loads = [(tid, access.reg) for tid, thread in enumerate(program)
             for access in thread if access.kind == "R"]
    if not loads:
        # Pure-write programs: distinguish nothing; the write-serialization
        # cases are covered by programs with observer loads and by the
        # final-memory sweep in verify_exactness.
        yield tuple()
        return
    for values in itertools.product((0, 1), repeat=len(loads)):
        yield tuple((key, value) for key, value in zip(loads, values))


def verify_exactness(model: Model, max_threads: int = 2, max_len: int = 2,
                     addresses: Sequence[str] = ("x", "y"),
                     include_final_memory: bool = True,
                     limit: Optional[int] = None) -> ExactnessReport:
    """Sweep all bounded programs/outcomes; compare the model against SC.

    ``limit`` bounds the number of programs (for incremental runs).
    """
    report = ExactnessReport()
    seen = set()
    for program in enumerate_programs(max_threads, max_len, addresses):
        canon = _canonical(program)
        if canon in seen:
            continue
        seen.add(canon)
        report.programs += 1
        if limit is not None and report.programs > limit:
            report.programs -= 1
            break
        reference = sc_outcomes(program)

        conditions = list(enumerate_conditions(program))
        if include_final_memory:
            written = sorted({a.addr for t in program for a in t if a.kind == "W"})
            extended = []
            for condition in conditions:
                extended.append(condition)
                for addr in written:
                    for value in (0, 1):
                        extended.append(condition + (((-1, addr), value),))
            conditions = extended

        for condition in conditions:
            if not condition:
                continue
            test = LitmusTest("sweep", program, condition)
            permitted = any(test.outcome_matches(o) for o in reference)
            observable = solve_observability(model, test).observable
            report.outcomes_checked += 1
            if observable and not permitted:
                report.unsound.append((test.format(), condition))
            elif permitted and not observable:
                report.overstrict.append((test.format(), condition))
    return report
