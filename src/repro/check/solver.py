"""Observability solving: SAT with an eager happens-before order.

The Check tools search for an acyclic µhb graph satisfying all axioms;
acyclic = the execution is possible (paper section 2). Here acyclicity
is encoded eagerly: a strict-partial-order relation R over the µhb
nodes (antisymmetric + transitive) with every asserted edge implying
R(src, dst). Any edge cycle would force both R(a,b) and R(b,a), so a
single SAT call decides observability — SAT means the outcome is
observable and the model yields a witness graph; UNSAT proves the
outcome impossible on the modeled microarchitecture.

Order variables and transitivity clauses are allocated per weakly
connected component of the candidate-edge graph (``order_encoding=
"components"``): a cycle is a connected subgraph, so edges in different
components can never close one and cross-component order variables are
dead weight.  The seed's all-pairs encoding is kept as
``order_encoding="allpairs"`` for A/B testing and benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CheckError
from ..litmus import LitmusTest
from ..resilience import DECIDED, TIMEOUT, Budget, BudgetClock
from ..sat import SAT, UNSAT, make_solver
from ..uspec import ast as U
from .evaluator import ModelEvaluator, UhbEdge, UhbNode, _Unsatisfiable
from .instance import GroundContext


@dataclass
class UhbGraph:
    """A concrete (acyclic) µhb graph witnessing an execution."""

    ctx: GroundContext
    nodes_of: Dict[int, List[str]]
    edges: List[Tuple[UhbNode, UhbNode, str]]
    stage_order: List[str]

    def to_dot(self, title: str = "uhb") -> str:
        """Fig. 1b-style rendering: columns = instructions in program
        order, rows = locations in stage order."""
        lines = [f'digraph "{title}" {{',
                 "  rankdir=TB; splines=true; node [shape=circle];"]
        uops = sorted(self.ctx.uops, key=lambda u: (u.core, u.index))
        # Column headers.
        for uop in uops:
            lines.append(f'  subgraph "cluster_i{uop.uid}" {{')
            lines.append(f'    label="{uop.label()}";')
            for loc in self.nodes_of.get(uop.uid, []):
                lines.append(f'    "n{uop.uid}_{loc}" [label="{loc}"];')
            lines.append("  }")
        color_of = {"PO": "green", "rf": "deeppink", "fr": "red",
                    "co": "black", "path": "black"}
        for src, dst, label in self.edges:
            color = color_of.get(label, "blue")
            lines.append(
                f'  "n{src[0]}_{src[1]}" -> "n{dst[0]}_{dst[1]}" '
                f'[label="{label}", color="{color}"];')
        lines.append("}")
        return "\n".join(lines)


@dataclass
class SolveStats:
    """Per-instance encoding/solving statistics (surfaced in reports).

    The ``sat_*`` counters and ``arena_bytes`` are cumulative CDCL-core
    totals feeding ``--profile-sat``; ``batch_shared_levels`` /
    ``batch_assumption_levels`` measure how much assumption-prefix
    propagation :meth:`ProgramSolver.decide_batch` reused (their ratio
    is the prefix-share ratio in profile reports).
    """

    vars: int = 0
    clauses: int = 0
    order_components: int = 0
    ground_seconds: float = 0.0
    solve_seconds: float = 0.0
    sat_propagations: int = 0
    sat_conflicts: int = 0
    sat_decisions: int = 0
    sat_reductions: int = 0
    arena_bytes: int = 0
    batch_shared_levels: int = 0
    batch_assumption_levels: int = 0

    @property
    def ground_ms(self) -> float:
        return self.ground_seconds * 1000.0

    @property
    def solve_ms(self) -> float:
        return self.solve_seconds * 1000.0

    def absorb_solver(self, solver) -> None:
        """Fold a CDCL core's cumulative counters into these stats.
        Call once per solver (the counters are lifetime totals)."""
        self.sat_propagations += solver.propagations
        self.sat_conflicts += solver.conflicts
        self.sat_decisions += solver.decisions
        self.sat_reductions += solver.reductions
        bytes_now = solver.arena_bytes()
        if bytes_now > self.arena_bytes:
            self.arena_bytes = bytes_now
        self.batch_shared_levels += solver.batch_shared_levels
        self.batch_assumption_levels += solver.batch_assumption_levels


@dataclass
class ObservabilityResult:
    observable: bool
    graph: Optional[UhbGraph]
    iterations: int
    time_seconds: float
    cycle_example: List[UhbNode] = field(default_factory=list)
    stats: SolveStats = field(default_factory=SolveStats)
    #: DECIDED, or TIMEOUT/UNKNOWN when a budget expired mid-solve; an
    #: undecided result always carries ``observable=False`` and must be
    #: consumed conservatively (never as a PASS or an UNSAT proof).
    status: str = DECIDED

    @property
    def decided(self) -> bool:
        return self.status == DECIDED


def _find_cycle(edges: List[UhbEdge]) -> Optional[List[UhbEdge]]:
    """Return the edges of one directed cycle, or None."""
    succ: Dict[UhbNode, List[UhbNode]] = {}
    for src, dst in edges:
        succ.setdefault(src, []).append(dst)
    state: Dict[UhbNode, int] = {}

    for start in list(succ):
        if state.get(start):
            continue
        stack: List[Tuple[UhbNode, int]] = [(start, 0)]
        state[start] = 1  # on stack
        while stack:
            node, child_index = stack[-1]
            children = succ.get(node, [])
            if child_index >= len(children):
                stack.pop()
                state[node] = 2
                continue
            stack[-1] = (node, child_index + 1)
            child = children[child_index]
            mark = state.get(child, 0)
            if mark == 1:
                # Found a cycle: walk back up the stack to the child.
                cycle_nodes = [child]
                for frame_node, _ in reversed(stack):
                    cycle_nodes.append(frame_node)
                    if frame_node == child:
                        break
                cycle_nodes.reverse()
                return [(cycle_nodes[i], cycle_nodes[i + 1])
                        for i in range(len(cycle_nodes) - 1)]
            if mark == 0:
                state[child] = 1
                stack.append((child, 0))
    return None


def _weak_components(nodes: Sequence[UhbNode],
                     edges: Dict[UhbEdge, int]) -> List[List[UhbNode]]:
    """Weakly connected components of the candidate-edge graph, each a
    sorted node list; components ordered by smallest member."""
    parent: Dict[UhbNode, UhbNode] = {node: node for node in nodes}

    def find(node: UhbNode) -> UhbNode:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:  # path compression
            parent[node], node = root, parent[node]
        return root

    for src, dst in edges:
        ra, rb = find(src), find(dst)
        if ra != rb:
            parent[rb] = ra
    groups: Dict[UhbNode, List[UhbNode]] = {}
    for node in nodes:
        groups.setdefault(find(node), []).append(node)
    return sorted((sorted(group) for group in groups.values()),
                  key=lambda group: group[0])


def _add_order_constraints(evaluator: ModelEvaluator,
                           order_encoding: str = "components") -> int:
    """Eager acyclicity: a strict partial order R over the µhb nodes
    touched by edge variables; every asserted edge implies R.

    ``order_encoding="components"`` restricts order variables and the
    O(n^3) transitivity clauses to each weakly connected component of
    the candidate-edge graph; ``"allpairs"`` is the seed's encoding over
    every node pair.  Returns the number of components encoded.
    """
    cnf = evaluator.cnf
    nodes = sorted({n for edge in evaluator.edge_vars for n in edge})
    if order_encoding == "allpairs":
        components = [nodes] if nodes else []
    elif order_encoding == "components":
        components = _weak_components(nodes, evaluator.edge_vars)
    else:
        raise CheckError(f"unknown order encoding {order_encoding!r}")
    order: Dict[Tuple[UhbNode, UhbNode], int] = {}
    for component in components:
        for a in component:
            for b in component:
                if a != b:
                    order[(a, b)] = cnf.new_var()
        # Antisymmetry (strictness).
        for i, a in enumerate(component):
            for b in component[i + 1:]:
                cnf.add_clause([-order[(a, b)], -order[(b, a)]])
        # Transitivity.
        for a in component:
            for b in component:
                if a == b:
                    continue
                ab = order[(a, b)]
                for c in component:
                    if c == a or c == b:
                        continue
                    cnf.add_clause([-ab, -order[(b, c)], order[(a, c)]])
    # Edges imply order (src and dst always share a component).
    for (src, dst), var in evaluator.edge_vars.items():
        cnf.add_clause([-var, order[(src, dst)]])
    return len(components)


def extract_witness(model: U.Model, evaluator: ModelEvaluator,
                    ctx: GroundContext, solver) -> UhbGraph:
    """Read the chosen edges out of a SAT model and build the witness
    graph, sanity-checking that the order encoding kept it acyclic."""
    chosen = [edge for edge, var in evaluator.edge_vars.items()
              if solver.model_value(var)]
    cycle = _find_cycle(chosen)
    if cycle is not None:  # pragma: no cover - guarded by the encoding
        raise CheckError("order encoding admitted a cyclic graph")
    return UhbGraph(
        ctx, evaluator.nodes_of,
        [(src, dst, evaluator.edge_labels.get((src, dst), ""))
         for src, dst in chosen],
        list(model.stage_names),
    )


def solve_observability(model: U.Model, test: LitmusTest,
                        max_iterations: int = 100000,
                        order_encoding: str = "components",
                        budget: Optional[Budget] = None,
                        clock: Optional[BudgetClock] = None,
                        sat_core: str = "arena"
                        ) -> ObservabilityResult:
    """Decide whether the test's outcome is observable under the model.

    One fresh ground+encode+solve cycle per call; for deciding many
    final conditions of the same program, use
    :class:`repro.check.incremental.ProgramSolver` instead.

    ``budget`` bounds the check (wall clock and/or SAT conflicts); a
    budget hit degrades to a first-class undecided result
    (``status=TIMEOUT/UNKNOWN``, ``observable=False``) rather than
    raising.  Pass an already-running ``clock`` instead to share one
    deadline across several calls (the incremental engine's fallback).
    """
    start = time.perf_counter()
    if clock is None and budget:
        clock = budget.start()
    stats = SolveStats()
    if clock is not None and clock.expired():
        return ObservabilityResult(False, None, 0,
                                   time.perf_counter() - start, stats=stats,
                                   status=TIMEOUT)
    ctx = GroundContext(test)
    evaluator = ModelEvaluator(model, ctx)
    try:
        evaluator.ground_model()
        _add_final_memory_constraints(evaluator, ctx)
    except _Unsatisfiable:
        # Grounding itself refuted the outcome; that is one decision
        # procedure invocation, the same as a solver UNSAT.
        stats.vars = evaluator.cnf.num_vars
        stats.clauses = len(evaluator.cnf.clauses)
        elapsed = time.perf_counter() - start
        stats.ground_seconds = elapsed
        return ObservabilityResult(False, None, 1, elapsed, stats=stats)
    stats.order_components = _add_order_constraints(evaluator, order_encoding)
    stats.vars = evaluator.cnf.num_vars
    stats.clauses = len(evaluator.cnf.clauses)
    solver = make_solver(core=sat_core)
    solver.add_cnf(evaluator.cnf)
    stats.ground_seconds = time.perf_counter() - start
    solve_start = time.perf_counter()
    status = solver.solve(**(clock.solve_args() if clock is not None else {}))
    stats.solve_seconds = time.perf_counter() - solve_start
    stats.absorb_solver(solver)
    if status not in (SAT, UNSAT):
        # Budget exhausted mid-search: degrade to an undecided verdict.
        return ObservabilityResult(False, None, 1,
                                   time.perf_counter() - start, stats=stats,
                                   status=clock.degraded_status())
    if status == UNSAT:
        return ObservabilityResult(False, None, 1,
                                   time.perf_counter() - start, stats=stats)
    graph = extract_witness(model, evaluator, ctx, solver)
    return ObservabilityResult(True, graph, 1,
                               time.perf_counter() - start, stats=stats)


def _final_write_options(evaluator: ModelEvaluator, writes, candidates,
                         mem_loc: str) -> List[int]:
    """One literal per candidate winner: all other writes to the address
    are co-before it at the memory location."""
    cnf = evaluator.cnf
    options = []
    for winner in candidates:
        before = [
            evaluator.edge_var((other.uid, mem_loc), (winner.uid, mem_loc), "co")
            for other in writes if other.uid != winner.uid
        ]
        options.append(cnf.encode_and(before) if before else cnf.true_lit)
    return options


def _add_final_memory_constraints(evaluator: ModelEvaluator,
                                  ctx: GroundContext) -> None:
    """Encode litmus final-memory conditions: the named value's write is
    last in the memory serialization order (or no write occurred and the
    value is the initial 0)."""
    mem_loc = _memory_location(evaluator)
    cnf = evaluator.cnf
    for addr, value in ctx.final_mem.items():
        writes = ctx.writes(addr)
        if not writes:
            if value != 0:
                raise _Unsatisfiable()
            continue
        candidates = [w for w in writes if w.data == value]
        if not candidates:
            raise _Unsatisfiable()
        if mem_loc is None:
            raise CheckError(
                "model has no memory location; cannot constrain final memory")
        options = _final_write_options(evaluator, writes, candidates, mem_loc)
        cnf.assert_lit(cnf.encode_or(options))


def _memory_location(evaluator: ModelEvaluator) -> Optional[str]:
    """The location standing for shared memory: taken from the
    Read_Values axiom's edges (falls back to a location named 'mem')."""
    for axiom in evaluator.model.axioms:
        if axiom.name == "Read_Values":
            found: List[str] = []

            def walk(f: U.Formula) -> None:
                if isinstance(f, (U.AddEdge, U.EdgeExists)):
                    found.append(f.src.location)
                    found.append(f.dst.location)
                for attr in ("body", "lhs", "rhs"):
                    child = getattr(f, attr, None)
                    if isinstance(child, U.Formula):
                        walk(child)
                for part in getattr(f, "parts", ()):
                    walk(part)

            walk(axiom.formula)
            if found:
                # The most frequent location in Read_Values is memory;
                # ties break on first appearance so the choice never
                # depends on set iteration order (PYTHONHASHSEED).
                counts: Dict[str, int] = {}
                for loc in found:
                    counts[loc] = counts.get(loc, 0) + 1
                return max(counts, key=lambda loc: (counts[loc],
                                                    -found.index(loc)))
    for name in evaluator.model.stage_names:
        if "mem" in name:
            return name
    return None
