"""Incremental observability: ground a program once, decide many
final conditions as assumption flips on one retained SAT solver.

The exhaustive sweep (``repro sweep``) enumerates thousands of final
conditions per bounded program; the seed re-ground + re-encoded + fresh
solved every one of them.  :class:`ProgramSolver` instead grounds the
µspec model *symbolically*: every load's observed value and every
final-memory constraint becomes a CNF *selector variable*, and the
data-dependent predicates (``SameData``, ``DataFromInitial``,
``IsFinalValue``) ground to literals over those selectors instead of
constants.  Deciding one final condition is then a single
``solve(assumptions=...)`` call against the retained clause database —
learned clauses and saved phases carry over between conditions.

Selector semantics (one variable per (load, value) and per
(address, value) pair over the program's small value domain):

* selector true  = the condition pins that load / final memory cell to
  that value;
* all selectors of a load false = the load is unconstrained, which is
  the fresh path's ``data=None`` ("any value") semantics.

Every ``decide`` passes a *complete* assignment of all selector
variables as assumptions, so the solver can never invent a pin.  A
condition outside the encoded value domain (or needing a final-memory
constraint when the model has no memory location) falls back to the
fresh per-condition path, keeping verdicts identical by construction.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

from ..litmus import LitmusTest
from ..resilience import DECIDED, TIMEOUT, BudgetClock
from ..resilience import UNKNOWN as _UNDECIDED
from ..sat import SAT, UNSAT, Cnf, make_solver
from ..uspec import ast as U
from .evaluator import ModelEvaluator, _Unsatisfiable
from .instance import GroundContext, Microop
from .solver import (
    ObservabilityResult,
    SolveStats,
    _add_order_constraints,
    _final_write_options,
    _memory_location,
    extract_witness,
    solve_observability,
)

#: a final condition: (((thread, reg), value), ...) with thread -1 = memory
Condition = Iterable[Tuple[Tuple[int, str], int]]


class SymbolicContext(GroundContext):
    """A :class:`GroundContext` whose load values are CNF selectors.

    Loads carry ``data=None``; the data-dependent predicates ground to
    literals over per-(load, value) selector variables so the same CNF
    serves every final condition.
    """

    def __init__(self, test: LitmusTest, cnf: Cnf):
        super().__init__(LitmusTest(test.name, test.program, ()))
        self.cnf = cnf
        #: small closed value domain: initial 0/1 plus every store value
        self.value_domain: List[int] = sorted(
            {0, 1} | {w.data for w in self.writes()})
        #: (load uid, value) -> selector var ("condition pins uid to value")
        self.load_sel: Dict[Tuple[int, int], int] = {}
        #: (address, value) -> selector var ("condition pins final mem")
        self.mem_sel: Dict[Tuple[str, int], int] = {}
        #: (core, register) -> load uid, for condition lookup
        self.load_uid: Dict[Tuple[int, str], int] = {}
        for uop in self.uops:
            if uop.is_read:
                self.load_uid[(uop.core, uop.reg)] = uop.uid
                for value in self.value_domain:
                    self.load_sel[(uop.uid, value)] = cnf.new_var()
        for addr in sorted({uop.addr for uop in self.uops}):
            for value in self.value_domain:
                self.mem_sel[(addr, value)] = cnf.new_var()

    # ------------------------------------------------------------------
    # Symbolic value tests (each returns a CNF literal)
    # ------------------------------------------------------------------
    def _pin_conflicts(self, uid: int, value) -> int:
        """Literal: the condition pins load ``uid`` to a value other
        than ``value`` (i.e. the fresh predicate would be False)."""
        others = [var for (u, v), var in self.load_sel.items()
                  if u == uid and v != value]
        return self.cnf.encode_or(others)

    def _same_data(self, a: Microop, b: Microop):
        if a.data is not None and b.data is not None:
            return a.data == b.data
        if a.data is None and b.data is None:
            # Two loads: false only when pinned to different values.
            conflicts = []
            for v1 in self.value_domain:
                for v2 in self.value_domain:
                    if v1 != v2:
                        conflicts.append(self.cnf.encode_and(
                            [self.load_sel[(a.uid, v1)],
                             self.load_sel[(b.uid, v2)]]))
            return -self.cnf.encode_or(conflicts)
        load, concrete = (a, b) if a.data is None else (b, a)
        return -self._pin_conflicts(load.uid, concrete.data)

    def _is_final_value(self, uop: Microop):
        options = []
        for value in self.value_domain:
            mem = self.mem_sel.get((uop.addr, value))
            if mem is None:
                continue
            if uop.data is None:
                options.append(self.cnf.encode_and(
                    [mem, self.load_sel[(uop.uid, value)]]))
            elif uop.data == value:
                options.append(mem)
        if not options:
            return False
        return self.cnf.encode_or(options)

    # ------------------------------------------------------------------
    def eval_pred(self, name: str, args: Tuple[Microop, ...],
                  attr=None, accesses=None):
        if name == "SameData":
            return self._same_data(args[0], args[1])
        if name == "DataFromInitial":
            uop = args[0]
            if uop.data is None:
                return -self._pin_conflicts(uop.uid, 0)
            return super().eval_pred(name, args, attr, accesses)
        if name == "IsFinalValue":
            return self._is_final_value(args[0])
        return super().eval_pred(name, args, attr, accesses)


class ProgramSolver:
    """Grounds one program once; decides its final conditions
    incrementally.

    ``decide(condition)`` returns the same verdict
    :func:`repro.check.solver.solve_observability` would for a
    :class:`LitmusTest` with that final condition — pinned by the
    engine-equivalence tests — but amortizes grounding, the order
    encoding, and the solver's learned clauses across all conditions of
    the program.
    """

    def __init__(self, model: U.Model, test: LitmusTest,
                 order_encoding: str = "components",
                 sat_core: str = "arena"):
        start = time.perf_counter()
        self.model = model
        self.test = test
        self.order_encoding = order_encoding
        self.sat_core = sat_core
        self.cnf = Cnf()
        self.ctx = SymbolicContext(test, self.cnf)
        self.evaluator = ModelEvaluator(model, self.ctx, cnf=self.cnf)
        self.always_unsat = False
        self.mem_fallback = False
        self.solver = None
        self.stats = SolveStats()
        self.decides = 0
        self.fresh_fallbacks = 0
        try:
            self.evaluator.ground_model()
        except _Unsatisfiable:
            # Some axiom is structurally false for this program shape,
            # independent of any condition: every outcome is unobservable.
            self.always_unsat = True
        if not self.always_unsat:
            self._encode_final_memory()
            self.stats.order_components = _add_order_constraints(
                self.evaluator, order_encoding)
            self.solver = make_solver(core=sat_core)
            self.solver.add_cnf(self.cnf)
        self.stats.vars = self.cnf.num_vars
        self.stats.clauses = len(self.cnf.clauses)
        self.stats.ground_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    def _encode_final_memory(self) -> None:
        """Guard the fresh path's final-memory constraint behind each
        (address, value) selector: infeasible pins become unit clauses,
        feasible ones imply "a write of that value serializes last"."""
        mem_loc = _memory_location(self.evaluator)
        cnf = self.cnf
        for (addr, value), sel in self.ctx.mem_sel.items():
            writes = self.ctx.writes(addr)
            if not writes:
                if value != 0:
                    cnf.add_clause([-sel])
                continue
            candidates = [w for w in writes if w.data == value]
            if not candidates:
                cnf.add_clause([-sel])
                continue
            if mem_loc is None:
                # The fresh path raises CheckError here; route any
                # condition that actually constrains memory to it.
                self.mem_fallback = True
                continue
            options = _final_write_options(
                self.evaluator, writes, candidates, mem_loc)
            cnf.add_clause([-sel, cnf.encode_or(options)])

    # ------------------------------------------------------------------
    def _fresh_fallback(self, condition,
                        clock: Optional[BudgetClock] = None
                        ) -> ObservabilityResult:
        self.fresh_fallbacks += 1
        return solve_observability(
            self.model,
            LitmusTest(self.test.name, self.test.program, tuple(condition)),
            order_encoding=self.order_encoding, clock=clock,
            sat_core=self.sat_core)

    # Plan kinds: how one condition will be decided.
    _FALLBACK = "fallback"   # route to the fresh per-condition path
    _UNSAT = "unsat"         # decided without solving (unobservable)
    _SOLVE = "solve"         # a complete assumption set for the solver

    def _plan(self, condition: Tuple) -> Tuple[str, Optional[List[int]]]:
        """Classify one condition: decide-by-construction, fresh-path
        fallback, or a complete selector assumption list to solve.  The
        precedence mirrors the historical ``decide`` exactly."""
        # Later entries win, matching dict(test.final) in GroundContext.
        entries = dict(condition)
        pins: Dict[int, int] = {}
        mems: Dict[str, int] = {}
        for (tid, reg), value in entries.items():
            if tid == -1:
                mems[reg] = value
                continue
            uid = self.ctx.load_uid.get((tid, reg))
            # Conditions naming unknown registers are ignored, exactly
            # like the fresh path's final.get() miss.
            if uid is not None:
                pins[uid] = value
        domain = set(self.ctx.value_domain)
        if any(value not in domain for value in pins.values()):
            return self._FALLBACK, None
        if self.mem_fallback and mems:
            return self._FALLBACK, None
        for addr in list(mems):
            if (addr, 0) not in self.ctx.mem_sel:
                # Address the program never touches: value 0 is the
                # initial state (no constraint), anything else is
                # unsatisfiable at grounding time on the fresh path.
                if mems[addr] != 0:
                    return self._UNSAT, None
                del mems[addr]
            elif mems[addr] not in domain:
                return self._FALLBACK, None
        if self.always_unsat:
            return self._UNSAT, None
        assumptions = [var if pins.get(uid) == value else -var
                       for (uid, value), var in self.ctx.load_sel.items()]
        assumptions.extend(var if mems.get(addr) == value else -var
                           for (addr, value), var in self.ctx.mem_sel.items())
        return self._SOLVE, assumptions

    def decide(self, condition: Condition, keep_graph: bool = False,
               clock: Optional[BudgetClock] = None) -> ObservabilityResult:
        """Observability of one final condition (assumption flip).

        ``clock`` is an already-running :class:`BudgetClock`; exhausting
        it degrades to an undecided (TIMEOUT/UNKNOWN) result.
        """
        start = time.perf_counter()
        self.decides += 1
        condition = tuple(condition)
        if clock is not None and clock.expired():
            return self._result(False, None, start, status=TIMEOUT)
        kind, assumptions = self._plan(condition)
        if kind is self._FALLBACK:
            return self._fresh_fallback(condition, clock)
        if kind is self._UNSAT:
            return self._result(False, None, start)
        solve_start = time.perf_counter()
        status = self.solver.solve(
            assumptions=assumptions,
            **(clock.solve_args() if clock is not None else {}))
        solve_seconds = time.perf_counter() - solve_start
        self.stats.solve_seconds += solve_seconds
        if status not in (SAT, UNSAT):
            return self._result(False, None, start,
                                solve_seconds=solve_seconds,
                                status=clock.degraded_status())
        if status != SAT:
            return self._result(False, None, start,
                                solve_seconds=solve_seconds)
        graph = None
        if keep_graph:
            graph = extract_witness(self.model, self.evaluator, self.ctx,
                                    self.solver)
        return self._result(True, graph, start, solve_seconds=solve_seconds)

    def decide_batch(self, conditions: Iterable[Condition],
                     keep_graph: bool = False) -> List[ObservabilityResult]:
        """Decide many final conditions in one batched solver pass.

        Verdict-identical to calling :meth:`decide` per condition
        (pinned by the batch-equivalence tests), but all solvable
        conditions go through a single
        :meth:`~repro.sat.solver.BatchedSolveMixin.solve_batch` call,
        which skips re-propagating the shared assumption prefix between
        consecutive conditions.  Conditions planned as fallbacks or
        decided by construction resolve exactly as in :meth:`decide`.
        Budgeted runs (a per-condition clock) use :meth:`decide`; this
        path is for the unbudgeted bulk sweep.
        """
        conditions = [tuple(condition) for condition in conditions]
        results: List[Optional[ObservabilityResult]] = [None] * len(conditions)
        batch_indices: List[int] = []
        assumption_sets: List[List[int]] = []
        for i, condition in enumerate(conditions):
            start = time.perf_counter()
            self.decides += 1
            kind, assumptions = self._plan(condition)
            if kind is self._SOLVE:
                batch_indices.append(i)
                assumption_sets.append(assumptions)
            elif kind is self._FALLBACK:
                results[i] = self._fresh_fallback(condition)
            else:
                results[i] = self._result(False, None, start)
        if not assumption_sets:
            return results
        solver = self.solver
        shared0 = solver.batch_shared_levels
        total0 = solver.batch_assumption_levels
        last = [time.perf_counter()]

        def on_result(j: int, status: str) -> None:
            # Fires while the solver still holds condition j's model
            # (the next batched solve would clobber it), so witness
            # extraction must happen here.
            now = time.perf_counter()
            solve_seconds = now - last[0]
            last[0] = now
            self.stats.solve_seconds += solve_seconds
            i = batch_indices[j]
            if status == SAT:
                graph = None
                if keep_graph:
                    graph = extract_witness(self.model, self.evaluator,
                                            self.ctx, solver)
                results[i] = self._result(True, graph, now - solve_seconds,
                                          solve_seconds=solve_seconds)
            elif status == UNSAT:
                results[i] = self._result(False, None, now - solve_seconds,
                                          solve_seconds=solve_seconds)
            else:  # pragma: no cover - no budget is threaded through
                results[i] = self._result(False, None, now - solve_seconds,
                                          solve_seconds=solve_seconds,
                                          status=_UNDECIDED)

        solver.solve_batch(assumption_sets, on_result=on_result)
        self.stats.batch_shared_levels += \
            solver.batch_shared_levels - shared0
        self.stats.batch_assumption_levels += \
            solver.batch_assumption_levels - total0
        return results

    # ------------------------------------------------------------------
    def _result(self, observable: bool, graph, start: float,
                solve_seconds: float = 0.0,
                status: str = DECIDED) -> ObservabilityResult:
        stats = SolveStats(
            vars=self.stats.vars,
            clauses=self.stats.clauses,
            order_components=self.stats.order_components,
            # Grounding is amortized: charge it to the first decide so
            # suite totals stay meaningful.
            ground_seconds=self.stats.ground_seconds
            if self.decides == 1 else 0.0,
            solve_seconds=solve_seconds,
        )
        return ObservabilityResult(observable, graph, 1,
                                   time.perf_counter() - start, stats=stats,
                                   status=status)
