"""Concrete evaluation of netlist cell operations on Python integers.

Shared by the RTL simulator and the constant-folding pass so that both
agree exactly on cell semantics. All values are non-negative ints
masked to their wire width; all operators are unsigned.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..errors import NetlistError
from .ir import Cell


def mask(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits."""
    return value & ((1 << width) - 1)


def eval_cell(cell: Cell, operands: Sequence[int], widths: Sequence[int], out_width: int) -> int:
    """Evaluate one combinational cell.

    ``operands`` are the already-masked input values, ``widths`` their
    widths, ``out_width`` the output wire width.
    """
    op = cell.op
    if op == "not":
        return mask(~operands[0], out_width)
    if op == "and":
        result = operands[0]
        for val in operands[1:]:
            result &= val
        return result
    if op == "or":
        result = operands[0]
        for val in operands[1:]:
            result |= val
        return result
    if op == "xor":
        result = operands[0]
        for val in operands[1:]:
            result ^= val
        return result
    if op == "xnor":
        return mask(~(operands[0] ^ operands[1]), out_width)
    if op == "redand":
        return 1 if operands[0] == mask(-1, widths[0]) else 0
    if op == "redor":
        return 1 if operands[0] != 0 else 0
    if op == "redxor":
        return bin(operands[0]).count("1") & 1
    if op == "lognot":
        return 1 if operands[0] == 0 else 0
    if op == "logand":
        return 1 if all(v != 0 for v in operands) else 0
    if op == "logor":
        return 1 if any(v != 0 for v in operands) else 0
    if op == "eq":
        return 1 if operands[0] == operands[1] else 0
    if op == "ne":
        return 1 if operands[0] != operands[1] else 0
    if op == "lt":
        return 1 if operands[0] < operands[1] else 0
    if op == "le":
        return 1 if operands[0] <= operands[1] else 0
    if op == "gt":
        return 1 if operands[0] > operands[1] else 0
    if op == "ge":
        return 1 if operands[0] >= operands[1] else 0
    if op == "add":
        return mask(operands[0] + operands[1], out_width)
    if op == "sub":
        return mask(operands[0] - operands[1], out_width)
    if op == "mul":
        return mask(operands[0] * operands[1], out_width)
    if op == "shl":
        shift = operands[1]
        if shift >= out_width:
            return 0
        return mask(operands[0] << shift, out_width)
    if op == "shr":
        shift = operands[1]
        if shift >= widths[0]:
            return 0
        return operands[0] >> shift
    if op == "mux":
        return operands[1] if operands[0] else operands[2]
    if op == "concat":
        result = 0
        for val, width in zip(operands, widths):
            result = (result << width) | val
        return result
    if op == "slice":
        lo, hi = cell.attrs["lo"], cell.attrs["hi"]
        return (operands[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
    if op == "zext":
        return operands[0]
    raise NetlistError(f"eval_cell: unknown op {op!r}")


def eval_const_expr(op: str, operands: Sequence[int], widths: Sequence[int],
                    out_width: int, attrs: Dict[str, int]) -> int:
    """Evaluate an op outside a Cell object (used by the elaborator)."""
    cell = Cell.__new__(Cell)
    cell.name = "$const"
    cell.op = op
    cell.inputs = []
    cell.output = ""
    cell.attrs = attrs
    return eval_cell(cell, operands, widths, out_width)
