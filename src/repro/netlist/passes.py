"""Netlist transformation and analysis passes.

The formal engine leans on :func:`cone_of_influence` to shrink property
checks to the state that can actually affect the asserted signals — the
"highly localized properties" the paper credits for its low proof times
(section 6.4, Scalability).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Set

from ..errors import NetlistError
from .ir import Cell, Const, Dff, MemReadPort, Memory, Netlist


def _ref_token(ref) -> str:
    if isinstance(ref, Const):
        return f"c{ref.width}:{ref.value}"
    return f"w{ref}"


def netlist_fingerprint(netlist: Netlist) -> str:
    """A stable content hash of a netlist's structure.

    Canonical under cell reordering (a netlist is a DAG over named
    wires, so two cell lists equal as multisets denote the same
    design).  Used to key the verdict cache and the shared bitblast
    cache; the digest is memoized on the netlist instance and
    invalidated if the structure is mutated afterwards (callers of the
    mutating passes get a fresh hash).
    """
    count = (len(netlist.cells), len(netlist.wires), len(netlist.inputs),
             len(netlist.dffs), len(netlist.memories))
    cached = getattr(netlist, "_fingerprint_cache", None)
    if cached is not None and cached[0] == count:
        return cached[1]
    hasher = hashlib.sha256()

    def feed(text: str) -> None:
        hasher.update(text.encode("utf-8"))
        hasher.update(b"\x00")

    for name in sorted(netlist.inputs):
        feed(f"in {name} {netlist.inputs[name]}")
    for name in sorted(netlist.wires):
        feed(f"wire {name} {netlist.wires[name].width}")
    for token in sorted(
            f"cell {cell.op} {','.join(_ref_token(r) for r in cell.inputs)} "
            f"-> {cell.output} {sorted(cell.attrs.items())}"
            for cell in netlist.cells):
        feed(token)
    for name in sorted(netlist.dffs):
        dff = netlist.dffs[name]
        feed(f"dff {dff.q} <= {_ref_token(dff.d)} init={dff.init}")
    for name in sorted(netlist.memories):
        mem = netlist.memories[name]
        feed(f"mem {name} {mem.width}x{mem.depth} init={sorted(mem.init.items())}")
        for rp in mem.read_ports:
            feed(f"rd {_ref_token(rp.addr)} -> {rp.data}")
        for wp in mem.write_ports:
            feed(f"wr {_ref_token(wp.addr)} {_ref_token(wp.data)} "
                 f"en={_ref_token(wp.enable)}")
    digest = hasher.hexdigest()
    netlist._fingerprint_cache = (count, digest)
    return digest


def support_wires(netlist: Netlist, roots: Iterable[str]) -> Set[str]:
    """All wires transitively feeding ``roots`` (through cells, DFFs and
    memory ports) — the sequential fan-in closure."""
    drivers = netlist.driver_map()
    seen: Set[str] = set()
    stack: List[str] = [r for r in roots]
    mem_by_name = netlist.memories

    def push(ref) -> None:
        if isinstance(ref, str) and ref not in seen:
            stack.append(ref)

    while stack:
        name = stack.pop()
        if name in seen:
            continue
        if name not in netlist.wires:
            raise NetlistError(f"cone_of_influence: unknown wire {name!r}")
        seen.add(name)
        driver = drivers.get(name)
        if isinstance(driver, Cell):
            for ref in driver.inputs:
                push(ref)
        elif isinstance(driver, Dff):
            push(driver.d)
        elif isinstance(driver, MemReadPort):
            push(driver.addr)
            mem = mem_by_name[driver.memory]
            for wp in mem.write_ports:
                push(wp.addr)
                push(wp.data)
                push(wp.enable)
    return seen


def cone_of_influence(netlist: Netlist, roots: Iterable[str]) -> Netlist:
    """Return a new netlist restricted to the fan-in cone of ``roots``.

    Wires outside the cone are dropped; inputs feeding the cone are
    kept. Memories are kept whole if any of their read ports is in the
    cone (their write cones are then included too).
    """
    keep = support_wires(netlist, roots)
    reduced = Netlist(f"{netlist.name}$coi")
    for name, wire in netlist.wires.items():
        if name in keep:
            reduced.add_wire(name, wire.width)
    for name, width in netlist.inputs.items():
        if name in keep:
            reduced.inputs[name] = width
    for name in netlist.outputs:
        if name in keep:
            reduced.outputs[name] = netlist.outputs[name]
    for cell in netlist.cells:
        if cell.output in keep:
            reduced.cells.append(Cell(cell.name, cell.op, list(cell.inputs), cell.output, dict(cell.attrs)))
    for dff in netlist.dffs.values():
        if dff.q in keep:
            reduced.dffs[dff.name] = Dff(dff.name, dff.d, dff.q, dff.width, dff.init)
    kept_mems: Set[str] = set()
    for mem in netlist.memories.values():
        ports_in_cone = [rp for rp in mem.read_ports if rp.data in keep]
        if not ports_in_cone:
            continue
        kept_mems.add(mem.name)
        new_mem = Memory(mem.name, mem.width, mem.depth, init=dict(mem.init))
        new_mem.read_ports = [MemReadPort(rp.name, rp.memory, rp.addr, rp.data) for rp in ports_in_cone]
        new_mem.write_ports = list(mem.write_ports)
        reduced.memories[mem.name] = new_mem
    reduced.validate()
    return reduced


def fold_constants(netlist: Netlist) -> int:
    """Replace cells whose inputs are all constants with inline constants.

    Rewrites consumer inputs in place; returns the number of cells
    folded. Run repeatedly to convergence by the caller if desired (a
    single pass already folds chains because cells are visited in
    topological order).
    """
    from .opseval import eval_cell

    folded: Dict[str, Const] = {}
    remaining: List[Cell] = []

    def resolve(ref):
        if isinstance(ref, str) and ref in folded:
            return folded[ref]
        return ref

    for cell in netlist.topo_cells():
        cell.inputs = [resolve(ref) for ref in cell.inputs]
        if all(isinstance(ref, Const) for ref in cell.inputs):
            out_width = netlist.wires[cell.output].width
            value = eval_cell(
                cell,
                [ref.value for ref in cell.inputs],
                [ref.width for ref in cell.inputs],
                out_width,
            )
            folded[cell.output] = Const(out_width, value)
        else:
            remaining.append(cell)

    if not folded:
        return 0
    # Rewrite all other consumers.
    for dff in netlist.dffs.values():
        dff.d = resolve(dff.d)
    for mem in netlist.memories.values():
        for rp in mem.read_ports:
            rp.addr = resolve(rp.addr)
        for wp in mem.write_ports:
            wp.addr = resolve(wp.addr)
            wp.data = resolve(wp.data)
            wp.enable = resolve(wp.enable)
    for cell in remaining:
        cell.inputs = [resolve(ref) for ref in cell.inputs]
    # Drop folded cells and orphan wires (unless they are outputs).
    folded_names = set(folded)
    netlist.cells = [c for c in netlist.cells if c.output not in folded_names]
    for name in list(folded_names):
        if name not in netlist.outputs:
            del netlist.wires[name]
        else:
            # Keep output wires alive with an explicit constant driver.
            const = folded[name]
            netlist.add_cell("zext", [const], name)
    netlist._topo_cache = None
    return len(folded)
