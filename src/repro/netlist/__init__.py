"""Word-level netlist IR (the reproduction's RTLIL analogue).

Produced by ``repro.verilog`` elaboration; consumed by ``repro.dfg``
(full-design DFG extraction), ``repro.sim`` (cycle-accurate simulation)
and ``repro.formal`` (bit-blasting for property checks).
"""

from .hier import HierNetlist, InstanceInterface, InstancePort
from .ir import (
    ARITH_OPS,
    BITWISE_OPS,
    COMB_OPS,
    COMPARE_OPS,
    LOGIC_OPS,
    REDUCE_OPS,
    SHIFT_OPS,
    Cell,
    Const,
    Dff,
    Memory,
    MemReadPort,
    MemWritePort,
    Netlist,
    SignalRef,
    Wire,
)
from .opseval import eval_cell, mask
from .passes import (
    cone_of_influence,
    fold_constants,
    netlist_fingerprint,
    support_wires,
)
from .verilog_out import write_verilog

__all__ = [
    "Netlist",
    "HierNetlist",
    "InstanceInterface",
    "InstancePort",
    "Wire",
    "Cell",
    "Const",
    "Dff",
    "Memory",
    "MemReadPort",
    "MemWritePort",
    "SignalRef",
    "COMB_OPS",
    "BITWISE_OPS",
    "REDUCE_OPS",
    "LOGIC_OPS",
    "COMPARE_OPS",
    "ARITH_OPS",
    "SHIFT_OPS",
    "eval_cell",
    "mask",
    "cone_of_influence",
    "fold_constants",
    "netlist_fingerprint",
    "support_wires",
    "write_verilog",
]
