"""Word-level netlist intermediate representation.

This is the reproduction's analogue of Yosys RTLIL (paper section 4.1): a
flat graph of state elements (flip-flop registers and memories) connected
through word-level combinational cells. The Verilog elaborator produces
it; the DFG extractor, RTL simulator, and bit-blaster consume it.

Conventions
-----------
* There is a single implicit global clock; every :class:`Dff` and memory
  write port updates on its rising edge.
* Every wire is driven exactly once — by a cell output, a top-level
  input, or a DFF/memory-read output. The elaborator guarantees this;
  :meth:`Netlist.validate` re-checks it.
* All arithmetic/comparison cells are unsigned. Signed constructs are
  lowered by the elaborator before reaching the IR.
* Hierarchy is flattened; wire names are hierarchical paths such as
  ``core_gen[0].pipeline.inst_DX``, matching the naming style of the
  paper's case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..errors import NetlistError

# ---------------------------------------------------------------------------
# Signals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """A constant signal value: ``width`` bits holding ``value``."""

    width: int
    value: int

    def __post_init__(self):
        if self.width <= 0:
            raise NetlistError(f"constant width must be positive, got {self.width}")
        object.__setattr__(self, "value", self.value & ((1 << self.width) - 1))

    def __repr__(self) -> str:
        return f"{self.width}'d{self.value}"


SignalRef = Union[str, Const]
"""Either a wire name or an inline constant."""


@dataclass
class Wire:
    """A named signal bundle of ``width`` bits."""

    name: str
    width: int

    def __post_init__(self):
        if self.width <= 0:
            raise NetlistError(f"wire {self.name!r} has non-positive width {self.width}")


# ---------------------------------------------------------------------------
# Cells
# ---------------------------------------------------------------------------

#: Bitwise ops: all operands and the output share a width.
BITWISE_OPS = ("not", "and", "or", "xor", "xnor")
#: Reduction ops: one operand, 1-bit output.
REDUCE_OPS = ("redand", "redor", "redxor")
#: Logical ops: 1-bit output; operands any width (tested against zero).
LOGIC_OPS = ("lognot", "logand", "logor")
#: Comparison ops: 1-bit output; operands share a width. Unsigned.
COMPARE_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
#: Arithmetic ops: operands and output share a width (modular).
ARITH_OPS = ("add", "sub", "mul")
#: Shift ops: first operand and output share a width; second is the amount.
SHIFT_OPS = ("shl", "shr")

COMB_OPS = BITWISE_OPS + REDUCE_OPS + LOGIC_OPS + COMPARE_OPS + ARITH_OPS + SHIFT_OPS + (
    "mux",
    "concat",
    "slice",
    "zext",
)


@dataclass
class Cell:
    """A combinational cell.

    ``op`` is one of :data:`COMB_OPS`. ``inputs`` are signal references
    in operand order; for ``mux`` the order is ``(sel, when_true,
    when_false)``; for ``concat`` the order is most-significant first
    (Verilog ``{a, b}`` = inputs ``[a, b]``); ``slice`` takes the input
    plus ``lo``/``hi`` attrs; ``zext`` zero-extends to the output width.
    """

    name: str
    op: str
    inputs: List[SignalRef]
    output: str
    attrs: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.op not in COMB_OPS:
            raise NetlistError(f"unknown cell op {self.op!r}")


@dataclass
class Dff:
    """A D flip-flop register (one per Verilog ``reg`` vector).

    ``init`` is the power-on value (the V-scale designs use synchronous
    reset, which the elaborator lowers into the D-input logic, so
    ``init`` only matters for cycle 0).
    """

    name: str
    d: SignalRef
    q: str
    width: int
    init: int = 0


@dataclass
class MemReadPort:
    """An asynchronous (combinational) memory read port."""

    name: str
    memory: str
    addr: SignalRef
    data: str


@dataclass
class MemWritePort:
    """A synchronous memory write port (commits on the clock edge).

    When several write ports target one memory in the same cycle, later
    ports in :attr:`Memory.write_ports` order win (matching sequential
    assignment order in an always block).
    """

    name: str
    memory: str
    addr: SignalRef
    data: SignalRef
    enable: SignalRef


@dataclass
class Memory:
    """An addressable state array (register file, data memory, ...)."""

    name: str
    width: int
    depth: int
    read_ports: List[MemReadPort] = field(default_factory=list)
    write_ports: List[MemWritePort] = field(default_factory=list)
    init: Dict[int, int] = field(default_factory=dict)

    @property
    def addr_width(self) -> int:
        """Bits needed to address every cell."""
        return max(1, (self.depth - 1).bit_length())


# ---------------------------------------------------------------------------
# Netlist container
# ---------------------------------------------------------------------------


class Netlist:
    """A flattened design: wires, combinational cells, DFFs, memories."""

    def __init__(self, name: str = "top"):
        self.name = name
        self.wires: Dict[str, Wire] = {}
        self.cells: List[Cell] = []
        self.dffs: Dict[str, Dff] = {}
        self.memories: Dict[str, Memory] = {}
        self.inputs: Dict[str, int] = {}  # name -> width
        self.outputs: Dict[str, int] = {}
        self._cell_counter = 0
        self._topo_cache: Optional[List[Cell]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_wire(self, name: str, width: int) -> Wire:
        if name in self.wires:
            raise NetlistError(f"duplicate wire {name!r}")
        wire = Wire(name, width)
        self.wires[name] = wire
        self._topo_cache = None
        return wire

    def fresh_name(self, prefix: str = "$n") -> str:
        """Return an unused internal wire/cell name."""
        while True:
            self._cell_counter += 1
            name = f"{prefix}{self._cell_counter}"
            if name not in self.wires:
                return name

    def add_input(self, name: str, width: int) -> Wire:
        wire = self.add_wire(name, width)
        self.inputs[name] = width
        return wire

    def mark_output(self, name: str) -> None:
        if name not in self.wires:
            raise NetlistError(f"cannot mark unknown wire {name!r} as output")
        self.outputs[name] = self.wires[name].width

    def add_cell(self, op: str, inputs: Sequence[SignalRef], output: str,
                 attrs: Optional[Dict[str, int]] = None, name: Optional[str] = None) -> Cell:
        if output not in self.wires:
            raise NetlistError(f"cell output wire {output!r} does not exist")
        cell = Cell(name or self.fresh_name("$cell"), op, list(inputs), output, attrs or {})
        self.cells.append(cell)
        self._topo_cache = None
        return cell

    def add_dff(self, name: str, d: SignalRef, q: str, width: int, init: int = 0) -> Dff:
        if name in self.dffs:
            raise NetlistError(f"duplicate DFF {name!r}")
        if q not in self.wires:
            raise NetlistError(f"DFF output wire {q!r} does not exist")
        dff = Dff(name, d, q, width, init)
        self.dffs[name] = dff
        self._topo_cache = None
        return dff

    def add_memory(self, name: str, width: int, depth: int,
                   init: Optional[Dict[int, int]] = None) -> Memory:
        if name in self.memories:
            raise NetlistError(f"duplicate memory {name!r}")
        mem = Memory(name, width, depth, init=dict(init or {}))
        self.memories[name] = mem
        self._topo_cache = None
        return mem

    def add_read_port(self, memory: str, addr: SignalRef, data: str) -> MemReadPort:
        mem = self.memories[memory]
        port = MemReadPort(f"{memory}$rd{len(mem.read_ports)}", memory, addr, data)
        mem.read_ports.append(port)
        self._topo_cache = None
        return port

    def add_write_port(self, memory: str, addr: SignalRef, data: SignalRef,
                       enable: SignalRef) -> MemWritePort:
        mem = self.memories[memory]
        port = MemWritePort(f"{memory}$wr{len(mem.write_ports)}", memory, addr, data, enable)
        mem.write_ports.append(port)
        return port

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def width_of(self, ref: SignalRef) -> int:
        if isinstance(ref, Const):
            return ref.width
        try:
            return self.wires[ref].width
        except KeyError:
            raise NetlistError(f"unknown wire {ref!r}") from None

    def driver_map(self) -> Dict[str, object]:
        """Map each driven wire name to its driver (Cell/Dff/MemReadPort/'input')."""
        drivers: Dict[str, object] = {}

        def set_driver(name: str, driver: object) -> None:
            if name in drivers:
                raise NetlistError(f"wire {name!r} is driven more than once")
            drivers[name] = driver

        for name in self.inputs:
            set_driver(name, "input")
        for cell in self.cells:
            set_driver(cell.output, cell)
        for dff in self.dffs.values():
            set_driver(dff.q, dff)
        for mem in self.memories.values():
            for port in mem.read_ports:
                set_driver(port.data, port)
        return drivers

    def state_elements(self) -> List[str]:
        """Names of all state elements (DFFs then memories), sorted."""
        return sorted(self.dffs) + sorted(self.memories)

    # ------------------------------------------------------------------
    # Validation and scheduling
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check single-driver, width, and reference invariants."""
        drivers = self.driver_map()
        for name, wire in self.wires.items():
            if name not in drivers:
                raise NetlistError(f"wire {name!r} has no driver")
            del wire  # width checked below per use
        for cell in self.cells:
            self._check_cell_widths(cell)
        for dff in self.dffs.values():
            if self.width_of(dff.d) != dff.width or self.wires[dff.q].width != dff.width:
                raise NetlistError(f"DFF {dff.name!r} has mismatched widths")
        for mem in self.memories.values():
            for rp in mem.read_ports:
                if self.wires[rp.data].width != mem.width:
                    raise NetlistError(f"read port {rp.name!r} width mismatch")
            for wp in mem.write_ports:
                if self.width_of(wp.data) != mem.width:
                    raise NetlistError(f"write port {wp.name!r} data width mismatch")
                if self.width_of(wp.enable) != 1:
                    raise NetlistError(f"write port {wp.name!r} enable must be 1 bit")
        self.topo_cells()  # raises on combinational cycles

    def _check_cell_widths(self, cell: Cell) -> None:
        out_w = self.wires[cell.output].width
        widths = [self.width_of(ref) for ref in cell.inputs]
        op = cell.op
        if op in BITWISE_OPS or op in ARITH_OPS:
            if any(w != out_w for w in widths):
                raise NetlistError(f"cell {cell.name!r} ({op}): operand/output width mismatch")
        elif op in REDUCE_OPS or op in LOGIC_OPS or op in COMPARE_OPS:
            if out_w != 1:
                raise NetlistError(f"cell {cell.name!r} ({op}): output must be 1 bit")
            if op in COMPARE_OPS and widths[0] != widths[1]:
                raise NetlistError(f"cell {cell.name!r} ({op}): operand width mismatch")
        elif op in SHIFT_OPS:
            if widths[0] != out_w:
                raise NetlistError(f"cell {cell.name!r} ({op}): value/output width mismatch")
        elif op == "mux":
            if widths[0] != 1 or widths[1] != out_w or widths[2] != out_w:
                raise NetlistError(f"cell {cell.name!r} (mux): width mismatch")
        elif op == "concat":
            if sum(widths) != out_w:
                raise NetlistError(f"cell {cell.name!r} (concat): widths sum to {sum(widths)}, output is {out_w}")
        elif op == "slice":
            lo, hi = cell.attrs["lo"], cell.attrs["hi"]
            if not (0 <= lo <= hi < widths[0]) or out_w != hi - lo + 1:
                raise NetlistError(f"cell {cell.name!r} (slice): bad range [{hi}:{lo}] of {widths[0]}")
        elif op == "zext":
            if widths[0] > out_w:
                raise NetlistError(f"cell {cell.name!r} (zext): input wider than output")

    def topo_cells(self) -> List[Cell]:
        """Combinational cells (and read ports treated as sources) in
        dependency order; raises on a combinational cycle."""
        if self._topo_cache is not None:
            return self._topo_cache
        drivers = self.driver_map()
        order: List[Cell] = []
        state: Dict[str, int] = {}  # cell name -> 0 visiting, 1 done

        def visit(cell: Cell, stack: List[str]) -> None:
            mark = state.get(cell.name)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(stack + [cell.name])
                raise NetlistError(f"combinational cycle: {cycle}")
            state[cell.name] = 0
            stack.append(cell.name)
            for ref in cell.inputs:
                if isinstance(ref, Const):
                    continue
                driver = drivers.get(ref)
                if isinstance(driver, Cell):
                    visit(driver, stack)
                elif isinstance(driver, MemReadPort):
                    # A combinational read depends on its address cone.
                    addr_driver = drivers.get(driver.addr) if isinstance(driver.addr, str) else None
                    if isinstance(addr_driver, Cell):
                        visit(addr_driver, stack)
            stack.pop()
            state[cell.name] = 1
            order.append(cell)

        # Memory read addresses must themselves be scheduled before any
        # consumer of the read data; handle by visiting address cones of
        # read ports explicitly (the read itself is instantaneous).
        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000 + 2 * len(self.cells)))
        try:
            for cell in self.cells:
                visit(cell, [])
        finally:
            sys.setrecursionlimit(old_limit)
        self._topo_cache = order
        return order

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Deep-copy the netlist (used to attach per-property monitors
        without disturbing the base design)."""
        clone = Netlist(name or self.name)
        for wire in self.wires.values():
            clone.wires[wire.name] = Wire(wire.name, wire.width)
        clone.inputs = dict(self.inputs)
        clone.outputs = dict(self.outputs)
        for cell in self.cells:
            clone.cells.append(Cell(cell.name, cell.op, list(cell.inputs),
                                    cell.output, dict(cell.attrs)))
        for dff in self.dffs.values():
            clone.dffs[dff.name] = Dff(dff.name, dff.d, dff.q, dff.width, dff.init)
        for mem in self.memories.values():
            new_mem = Memory(mem.name, mem.width, mem.depth, init=dict(mem.init))
            new_mem.read_ports = [MemReadPort(rp.name, rp.memory, rp.addr, rp.data)
                                  for rp in mem.read_ports]
            new_mem.write_ports = [MemWritePort(wp.name, wp.memory, wp.addr,
                                                wp.data, wp.enable)
                                   for wp in mem.write_ports]
            clone.memories[mem.name] = new_mem
        clone._cell_counter = self._cell_counter
        return clone

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Design-size statistics in the style of paper section 5.1."""
        dff_bits = sum(dff.width for dff in self.dffs.values())
        mem_bits = sum(m.width * m.depth for m in self.memories.values())
        return {
            "wires": len(self.wires),
            "cells": len(self.cells),
            "registers": len(self.dffs),
            "memories": len(self.memories),
            "dff_bits": dff_bits,
            "memory_bits": mem_bits,
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (f"Netlist({self.name!r}, wires={s['wires']}, cells={s['cells']}, "
                f"registers={s['registers']}, memories={s['memories']})")
