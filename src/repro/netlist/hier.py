"""Hierarchy-preserving netlist view for compositional synthesis.

Monolithic elaboration flattens the instance tree into one
:class:`Netlist`.  Compositional synthesis (RealityCheck-style,
ROADMAP item 5) instead needs the module boundaries back: a netlist
per *module definition*, plus a typed record of every instance's
boundary ports so assume-guarantee obligations can be phrased on the
interface between neighbouring modules.

:class:`HierNetlist` packages both views.  The flat netlist is the
exact artifact monolithic elaboration produces (``flatten()`` is
byte-identical — same ``netlist_fingerprint``), so every downstream
consumer that wants the old behavior keeps it; the per-module
netlists are standalone elaborations of each instantiated module
definition with all inputs free, which makes any module-level proof
an over-approximation of the module's behavior inside the composed
design (sound for PROVEN verdicts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ir import Netlist


@dataclass(frozen=True)
class InstancePort:
    """One boundary port of a module instance."""

    name: str          # port name inside the module ("dmem_req_valid")
    direction: str     # "input" | "output"
    width: int
    flat_wire: str     # the wire carrying it in the flattened netlist


@dataclass(frozen=True)
class InstanceInterface:
    """Typed interface record for one instance in the flattened design.

    ``path`` is the flattened hierarchical prefix including the
    trailing dot (``core_gen[0].core.``), matching the wire-name
    prefixes in the flat netlist.  ``params`` are the fully resolved
    parameter bindings, so two instances with equal ``module_key``
    are elaborations of the same circuit.
    """

    path: str
    module: str
    params: Tuple[Tuple[str, int], ...]
    ports: Tuple[InstancePort, ...]

    @property
    def module_key(self) -> Tuple[str, Tuple[Tuple[str, int], ...]]:
        return (self.module, self.params)

    def port(self, name: str) -> InstancePort:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"instance {self.path!r} has no port {name!r}")


@dataclass
class HierNetlist:
    """Flat netlist + preserved instance boundaries + module netlists.

    ``module_netlists`` is keyed by :attr:`InstanceInterface.module_key`
    so N identical instances share one entry — the property module-
    granularity caching is built on.
    """

    flat: Netlist
    instances: List[InstanceInterface] = field(default_factory=list)
    module_netlists: Dict[Tuple[str, Tuple[Tuple[str, int], ...]], Netlist] = \
        field(default_factory=dict)

    def flatten(self) -> Netlist:
        """The monolithic netlist (bit-for-bit what ``compile_verilog``
        would have produced)."""
        return self.flat

    def instance_at(self, path: str) -> InstanceInterface:
        """Look up an instance by flattened prefix (with or without the
        trailing dot)."""
        if not path.endswith("."):
            path = path + "."
        for inst in self.instances:
            if inst.path == path:
                return inst
        raise KeyError(f"no instance at {path!r}; have "
                       f"{sorted(i.path for i in self.instances)}")

    def module_netlist(self, inst: InstanceInterface) -> Netlist:
        return self.module_netlists[inst.module_key]

    def instances_of(self, module: str) -> List[InstanceInterface]:
        return [inst for inst in self.instances if inst.module == module]

    def find_instance(self, port_names: List[str]) -> Optional[InstanceInterface]:
        """First instance whose module declares every named port —
        structural lookup used to locate interface roles (e.g. the
        arbiter is the instance with ``core_req_valid``/``core_req_ready``
        ports) without hard-coding instance names."""
        for inst in self.instances:
            have = {port.name for port in inst.ports}
            if all(name in have for name in port_names):
                return inst
        return None
