"""Netlist -> Verilog back-emitter.

Writes any :class:`Netlist` (including monitor-augmented property
netlists) back out as synthesizable Verilog that this repository's own
frontend can re-compile. Hierarchical/internal names (containing ``.``,
``[``, ``$``) are emitted as escaped identifiers (``\\name ``), which
the frontend's lexer accepts.

Round-trip fidelity: combinational and sequential behaviour is
preserved exactly (the test suite co-simulates original vs re-compiled
netlists); the only non-roundtripped detail is DFF/memory *power-on*
values, which plain Verilog-2005 expresses via ``initial`` blocks the
frontend deliberately ignores — drive reset first, as the bundled
designs do.
"""

from __future__ import annotations

import re
from typing import List

from ..errors import NetlistError
from .ir import Cell, Const, Netlist, SignalRef

_PLAIN_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_RESERVED = {
    "module", "endmodule", "input", "output", "wire", "reg", "assign",
    "always", "begin", "end", "if", "else", "case", "endcase", "default",
    "posedge", "negedge", "parameter", "localparam", "integer", "genvar",
    "generate", "endgenerate", "for", "logic", "signed", "or",
}


def _ident(name: str) -> str:
    if _PLAIN_NAME.match(name) and name not in _RESERVED:
        return name
    return "\\" + name + " "


def _ref(ref: SignalRef) -> str:
    if isinstance(ref, Const):
        return f"{ref.width}'d{ref.value}"
    return _ident(ref)


def _cell_expr(netlist: Netlist, cell: Cell) -> str:
    op = cell.op
    ins = [_ref(r) for r in cell.inputs]
    if op == "not":
        return f"~{ins[0]}"
    if op in ("and", "or", "xor"):
        symbol = {"and": "&", "or": "|", "xor": "^"}[op]
        return f" {symbol} ".join(ins)
    if op == "xnor":
        return f"~({ins[0]} ^ {ins[1]})"
    if op in ("redand", "redor", "redxor"):
        symbol = {"redand": "&", "redor": "|", "redxor": "^"}[op]
        return f"{symbol}({ins[0]})"
    if op == "lognot":
        return f"!{ins[0]}"
    if op in ("logand", "logor"):
        symbol = "&&" if op == "logand" else "||"
        return f" {symbol} ".join(f"({i})" for i in ins)
    if op in ("eq", "ne", "lt", "le", "gt", "ge"):
        symbol = {"eq": "==", "ne": "!=", "lt": "<",
                  "le": "<=", "gt": ">", "ge": ">="}[op]
        return f"{ins[0]} {symbol} {ins[1]}"
    if op in ("add", "sub", "mul"):
        symbol = {"add": "+", "sub": "-", "mul": "*"}[op]
        return f"{ins[0]} {symbol} {ins[1]}"
    if op in ("shl", "shr"):
        symbol = "<<" if op == "shl" else ">>"
        return f"{ins[0]} {symbol} {ins[1]}"
    if op == "mux":
        return f"{ins[0]} ? {ins[1]} : {ins[2]}"
    if op == "concat":
        return "{" + ", ".join(ins) + "}"
    if op == "slice":
        lo, hi = cell.attrs["lo"], cell.attrs["hi"]
        in_width = netlist.width_of(cell.inputs[0])
        if isinstance(cell.inputs[0], Const):
            value = (cell.inputs[0].value >> lo) & ((1 << (hi - lo + 1)) - 1)
            return f"{hi - lo + 1}'d{value}"
        if lo == 0 and hi == in_width - 1:
            return ins[0]
        if lo == hi:
            return f"{ins[0]}[{lo}]"
        return f"{ins[0]}[{hi}:{lo}]"
    if op == "zext":
        return ins[0]  # assignment context zero-extends/truncates
    raise NetlistError(f"verilog_out: unsupported op {op!r}")


def write_verilog(netlist: Netlist, module_name: str = "emitted",
                  clock: str = "clk") -> str:
    """Render ``netlist`` as one flat Verilog module.

    ``clock`` names the clock input driving every DFF and memory write
    (added if the netlist does not already have it).
    """
    lines: List[str] = []
    lines.append(f"// emitted from netlist {netlist.name!r} by repro.netlist.verilog_out")
    drivers_for_ports = netlist.driver_map()
    ports = []
    if clock not in netlist.inputs:
        ports.append(f"    input wire {clock}")
    for name, width in netlist.inputs.items():
        rng = f"[{width - 1}:0] " if width > 1 else ""
        ports.append(f"    input wire {rng}{_ident(name)}")
    for name, width in netlist.outputs.items():
        rng = f"[{width - 1}:0] " if width > 1 else ""
        kind = "reg" if hasattr(drivers_for_ports.get(name), "d") else "wire"
        ports.append(f"    output {kind} {rng}{_ident(name)}")
    lines.append(f"module {module_name}(")
    lines.append(",\n".join(ports))
    lines.append(");")
    lines.append("")

    drivers = netlist.driver_map()
    # Declarations for every non-port wire.
    for name, wire in sorted(netlist.wires.items()):
        if name in netlist.inputs or name in netlist.outputs:
            continue
        kind = "reg" if hasattr(drivers.get(name), "d") else "wire"
        rng = f"[{wire.width - 1}:0] " if wire.width > 1 else ""
        lines.append(f"    {kind} {rng}{_ident(name)};")
    # Output wires driven by DFFs need reg re-declaration workaround:
    # we declare an internal reg and assign. Handle by renaming below.
    lines.append("")

    for mem in sorted(netlist.memories.values(), key=lambda m: m.name):
        rng = f"[{mem.width - 1}:0] " if mem.width > 1 else ""
        lines.append(f"    reg {rng}{_ident(mem.name)} [0:{mem.depth - 1}];")
    lines.append("")

    # Combinational cells.
    for cell in netlist.topo_cells():
        target = cell.output
        if target in netlist.outputs and isinstance(drivers.get(target), Cell):
            pass  # outputs are plain wires; assign works
        lines.append(f"    assign {_ident(target)} = {_cell_expr(netlist, cell)};")
    lines.append("")

    # Memory read ports.
    for mem in sorted(netlist.memories.values(), key=lambda m: m.name):
        for port in mem.read_ports:
            lines.append(f"    assign {_ident(port.data)} = "
                         f"{_ident(mem.name)}[{_ref(port.addr)}];")
    lines.append("")

    # DFFs (grouped into one clocked block).
    dffs = sorted(netlist.dffs.values(), key=lambda d: d.q)
    if dffs:
        lines.append(f"    always @(posedge {clock}) begin")
        for dff in dffs:
            lines.append(f"        {_ident(dff.q)} <= {_ref(dff.d)};")
        lines.append("    end")
        lines.append("")

    # Memory write ports (order preserved: later ports win).
    for mem in sorted(netlist.memories.values(), key=lambda m: m.name):
        if not mem.write_ports:
            continue
        lines.append(f"    always @(posedge {clock}) begin")
        for port in mem.write_ports:
            lines.append(f"        if ({_ref(port.enable)}) begin")
            lines.append(f"            {_ident(mem.name)}[{_ref(port.addr)}] <= "
                         f"{_ref(port.data)};")
            lines.append("        end")
        lines.append("    end")
        lines.append("")

    lines.append("endmodule")
    return "\n".join(lines)
