"""Full-design and per-instruction data-flow graph analysis."""

from .extract import full_design_dfg
from .graph import Dfg
from .stages import StageLabels, label_stages

__all__ = ["Dfg", "full_design_dfg", "StageLabels", "label_stages"]
