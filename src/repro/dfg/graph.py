"""Data-flow graphs over state elements.

Nodes are state-element names (DFF registers and memory arrays); a
directed edge ``parent -> child`` means data can flow from the parent's
output into the child's next-state input through pure combinational
logic — a single-cycle relationship (paper section 4.1).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple


class Dfg:
    """A directed graph over state-element names."""

    def __init__(self):
        self.nodes: Set[str] = set()
        self._succ: Dict[str, Set[str]] = {}
        self._pred: Dict[str, Set[str]] = {}

    def add_node(self, name: str) -> None:
        self.nodes.add(name)
        self._succ.setdefault(name, set())
        self._pred.setdefault(name, set())

    def add_edge(self, parent: str, child: str) -> None:
        self.add_node(parent)
        self.add_node(child)
        self._succ[parent].add(child)
        self._pred[child].add(parent)

    def successors(self, name: str) -> Set[str]:
        return self._succ.get(name, set())

    def predecessors(self, name: str) -> Set[str]:
        return self._pred.get(name, set())

    def edges(self) -> List[Tuple[str, str]]:
        return sorted((p, c) for p, children in self._succ.items() for c in children)

    def reachable_from(self, root: str) -> Set[str]:
        """All nodes reachable from ``root`` (excluding root unless cyclic)."""
        seen: Set[str] = set()
        frontier = deque([root])
        while frontier:
            node = frontier.popleft()
            for succ in self._succ.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def distances_from(self, root: str) -> Dict[str, int]:
        """Shortest distance (in edges) from root; root itself is 0.
        Directed cycles keep the shortest distance (paper section 4.2.2).
        """
        dist = {root: 0}
        frontier = deque([root])
        while frontier:
            node = frontier.popleft()
            for succ in self._succ.get(node, ()):
                if succ not in dist:
                    dist[succ] = dist[node] + 1
                    frontier.append(succ)
        return dist

    def subgraph(self, keep: Iterable[str]) -> "Dfg":
        """Restriction to ``keep``: edges retained when both ends stay."""
        keep_set = set(keep)
        sub = Dfg()
        for node in keep_set & self.nodes:
            sub.add_node(node)
        for parent, child in self.edges():
            if parent in keep_set and child in keep_set:
                sub.add_edge(parent, child)
        return sub

    def to_dot(self, highlight: Optional[Set[str]] = None, title: str = "dfg") -> str:
        """Graphviz rendering (paper Fig. 3b/3c style)."""
        highlight = highlight or set()
        lines = [f'digraph "{title}" {{', "  rankdir=LR;"]
        for node in sorted(self.nodes):
            style = ' style=filled fillcolor="lightblue"' if node in highlight else ""
            lines.append(f'  "{node}"[{style.strip()}];' if style else f'  "{node}";')
        for parent, child in self.edges():
            lines.append(f'  "{parent}" -> "{child}";')
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.nodes)
