"""Full-design DFG extraction from a netlist (paper section 4.1).

The full-design DFG is built by collapsing all combinational logic
(including control flow) between state elements: for every DFF's
next-state input and every memory write port (address, data, enable),
walk the combinational fan-in cone back to the driving state elements.
A memory read port contributes both the memory array *and* the address
cone's state elements as parents of whatever consumes the read data.

Because the collapse assumes every possible data flow happens, the
result over-approximates the data flow any instruction can induce —
exactly the property intra-instruction HBI synthesis needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..netlist import Const, Dff, MemReadPort, Netlist
from .graph import Dfg


class _ConeWalker:
    """Computes, per wire, the set of state elements feeding it through
    combinational logic only (memoized)."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.drivers = netlist.driver_map()
        self._cache: Dict[str, frozenset] = {}

    def sources(self, ref) -> frozenset:
        if isinstance(ref, Const):
            return frozenset()
        if ref in self._cache:
            return self._cache[ref]
        # Iterative post-order DFS to avoid recursion limits on deep cones.
        stack = [(ref, False)]
        while stack:
            wire, processed = stack.pop()
            if wire in self._cache:
                continue
            driver = self.drivers.get(wire)
            if isinstance(driver, Dff):
                # State elements are identified by their output wire
                # (the architectural name, e.g. ``core.inst_DX``).
                self._cache[wire] = frozenset([driver.q])
                continue
            if driver == "input" or driver is None:
                self._cache[wire] = frozenset()
                continue
            if isinstance(driver, MemReadPort):
                deps = [driver.addr] if isinstance(driver.addr, str) else []
            else:
                deps = [i for i in driver.inputs if not isinstance(i, Const)]
            pending = [d for d in deps if d not in self._cache]
            if pending and not processed:
                stack.append((wire, True))
                for dep in pending:
                    stack.append((dep, False))
                continue
            union: Set[str] = set()
            for dep in deps:
                union |= self._cache.get(dep, frozenset())
            if isinstance(driver, MemReadPort):
                union.add(driver.memory)
            self._cache[wire] = frozenset(union)
        return self._cache[ref]


def full_design_dfg(netlist: Netlist, restrict_prefixes: Optional[List[str]] = None) -> Dfg:
    """Build the full-design DFG.

    ``restrict_prefixes`` keeps only state elements whose name starts
    with one of the prefixes (plus any it connects to) — used to analyze
    one representative core together with the shared resources (paper
    section 4.1: "need only consider the unique modules").
    """
    walker = _ConeWalker(netlist)
    dfg = Dfg()

    def wanted(name: str) -> bool:
        if restrict_prefixes is None:
            return True
        return any(name.startswith(p) for p in restrict_prefixes)

    for dff in netlist.dffs.values():
        if not wanted(dff.q):
            continue
        dfg.add_node(dff.q)
        for parent in walker.sources(dff.d):
            if wanted(parent):
                dfg.add_edge(parent, dff.q)
    for mem in netlist.memories.values():
        if not wanted(mem.name):
            continue
        dfg.add_node(mem.name)
        parents: Set[str] = set()
        for port in mem.write_ports:
            parents |= walker.sources(port.addr)
            parents |= walker.sources(port.data)
            parents |= walker.sources(port.enable)
        for parent in parents:
            if wanted(parent):
                dfg.add_edge(parent, mem.name)
    return dfg


def dff_q_to_name(netlist: Netlist) -> Dict[str, str]:
    """Map DFF output wires to DFF (state element) names."""
    return {dff.q: dff.name for dff in netlist.dffs.values()}
