"""Stage labeling and front-end filtering (paper section 4.2.2).

Stage labels come from BFS distance from the IM_PC in the full-design
DFG (directed cycles keep the shortest distance). Nodes labeled earlier
than the IFR — front-end state such as the instruction memory and the
fetch PC itself — are filtered out, and the remaining labels are
renumbered so the IFR sits at stage 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import SynthesisError
from .graph import Dfg


@dataclass
class StageLabels:
    """Filtered, renumbered stage labels for one core's candidate set."""

    stages: Dict[str, int]     # state element -> renumbered stage
    ifr: str
    im_pc: str
    raw_distances: Dict[str, int]

    def candidates(self) -> List[str]:
        """Candidate state elements (those that survived filtering)."""
        return sorted(self.stages)

    def stage_of(self, name: str) -> int:
        return self.stages[name]

    def max_stage(self) -> int:
        return max(self.stages.values(), default=0)

    def by_stage(self) -> Dict[int, List[str]]:
        grouped: Dict[int, List[str]] = {}
        for name, stage in sorted(self.stages.items()):
            grouped.setdefault(stage, []).append(name)
        return grouped


def label_stages(dfg: Dfg, im_pc: str, ifr: str) -> StageLabels:
    """Label and filter the full-design DFG per paper section 4.2.2."""
    if im_pc not in dfg.nodes:
        raise SynthesisError(f"IM_PC {im_pc!r} is not a node of the full-design DFG")
    distances = dfg.distances_from(im_pc)
    if ifr not in distances:
        raise SynthesisError(
            f"IFR {ifr!r} is not reachable from IM_PC {im_pc!r} in the DFG")
    ifr_stage = distances[ifr]
    stages = {
        name: distance - ifr_stage
        for name, distance in distances.items()
        if distance >= ifr_stage
    }
    return StageLabels(stages, ifr, im_pc, distances)
