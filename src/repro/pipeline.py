"""End-to-end pipeline supervisor: parse → synth → check, crash-safe.

``repro pipeline`` runs the paper's whole artifact flow — elaborate
the RTL, synthesize a µspec model, verify the litmus suite — as three
supervised stages with durable checkpoints in a state directory:

* ``pipeline.json`` — the stage ledger, written atomically (temp file
  + rename) after every stage transition.  Each completed stage
  records its artifact path and SHA-256, so a resumed pipeline can
  *verify* a checkpoint instead of trusting it: a tampered or
  half-written artifact raises :class:`repro.errors.PipelineError`
  rather than silently poisoning downstream stages.
* ``synth.jsonl`` — the formal layer's verdict journal.  A pipeline
  killed mid-synthesis resumes without re-discharging a single
  journaled SVA.
* ``check.jsonl`` — the Check layer's suite journal.  A pipeline
  killed mid-verification resumes without re-solving a single
  journaled litmus test.

The contract (pinned by the pipeline integration tests): kill the
pipeline at *any* point — mid-synth, mid-check, between stages — and
``resume=True`` reaches the same final ``model.uarch`` and
``report.json`` byte-for-byte.  The report is written in the
deterministic mode (no timings, no job counts), which is what makes
byte-equality meaningful.

Parsing is re-run on every invocation (elaboration is cheap and the
netlists live only in memory); its checkpoint records the netlist
content fingerprints so a resumed run detects a changed design instead
of mixing artifacts from two different RTL versions.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .errors import InterruptedRun, PipelineError
from .resilience import Budget, FaultPlan

STATE_SCHEMA = "repro-pipeline-state/1"
STAGES = ("parse", "synth", "check")
DESIGNS = ("multi", "unicore")


@dataclass
class PipelineConfig:
    """Everything one pipeline run needs, picklable and explicit."""

    state_dir: str
    design: str = "multi"
    resume: bool = False
    jobs: int = 1
    #: check-stage solving engine ("fresh" | "incremental")
    engine: str = "fresh"
    #: per-litmus-test wall-clock budget (None = unlimited)
    check_timeout: Optional[float] = None
    #: per-SVA wall-clock budget for synthesis (None = unlimited)
    synth_timeout: Optional[float] = None
    #: synthesis parameters; None = the design preset's defaults
    bound: Optional[int] = None
    max_k: Optional[int] = None
    candidates: Optional[List[str]] = None
    #: test hooks: wrap the property checker (e.g. fault injection) and
    #: inject deterministic faults into the check stage's pool
    checker_factory: Optional[Callable[[object], object]] = None
    check_fault_plan: Optional[FaultPlan] = None
    #: progress sink (the CLI passes print; tests leave it silent)
    echo: Callable[[str], None] = lambda _line: None


@dataclass
class PipelineResult:
    """Outcome of a completed pipeline run."""

    model_path: str
    report_path: str
    verdicts: List = field(default_factory=list)
    digest: str = ""
    #: stages served from checkpoints without re-execution
    stages_resumed: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.verdicts) and all(v.passed for v in self.verdicts)


def design_preset(design: str):
    """(sim_netlist, formal_netlist, metadata, bound, max_k, candidates,
    formal_cores) for a bundled design name — shared by the pipeline
    supervisor and the service's synth/parse jobs."""
    if design not in DESIGNS:
        raise PipelineError(f"unknown design {design!r} "
                            f"(expected one of {DESIGNS})")
    if design == "unicore":
        from .designs import load_unicore, unicore_metadata
        return (load_unicore(), load_unicore(formal=True),
                unicore_metadata(), 10, 1,
                ["ir_de", "gpr", "dstore.cells"], 1)
    from .designs import FORMAL_CONFIG, SIM_CONFIG, load_design
    from .designs import multi_vscale_metadata
    return (load_design(SIM_CONFIG), load_design(FORMAL_CONFIG),
            multi_vscale_metadata(SIM_CONFIG), 12, 2, None, 2)


def _sha256_file(path: str) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _atomic_write_json(path: str, payload: Dict) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".state-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class Pipeline:
    """One supervised parse → synth → check run over a state directory."""

    def __init__(self, config: PipelineConfig):
        if config.design not in DESIGNS:
            raise PipelineError(f"unknown design {config.design!r} "
                                f"(expected one of {DESIGNS})")
        self.config = config
        os.makedirs(config.state_dir, exist_ok=True)
        self.state_path = os.path.join(config.state_dir, "pipeline.json")
        self.model_path = os.path.join(config.state_dir, "model.uarch")
        self.report_path = os.path.join(config.state_dir, "report.json")
        self.synth_journal = os.path.join(config.state_dir, "synth.jsonl")
        self.check_journal = os.path.join(config.state_dir, "check.jsonl")
        self.state = self._load_state()
        self.stages_resumed: List[str] = []

    # ------------------------------------------------------------------
    # State ledger
    # ------------------------------------------------------------------
    def _load_state(self) -> Dict:
        if self.config.resume and os.path.exists(self.state_path):
            try:
                with open(self.state_path, "r", encoding="utf-8") as handle:
                    state = json.load(handle)
            except (OSError, ValueError) as exc:
                raise PipelineError(
                    f"unreadable pipeline state {self.state_path}: {exc}")
            if state.get("schema") != STATE_SCHEMA:
                raise PipelineError(
                    f"{self.state_path} is not a pipeline state file "
                    f"(schema {state.get('schema')!r})")
            if state.get("design") != self.config.design:
                raise PipelineError(
                    f"pipeline state was recorded for design "
                    f"{state.get('design')!r}, not {self.config.design!r}; "
                    f"use a fresh --state-dir")
            return state
        return {"schema": STATE_SCHEMA, "design": self.config.design,
                "stages": {}}

    def _save_state(self) -> None:
        _atomic_write_json(self.state_path, self.state)

    def _stage(self, name: str) -> Dict:
        return self.state["stages"].get(name, {})

    def _stage_done(self, name: str) -> bool:
        return self._stage(name).get("status") == "done"

    def _mark_done(self, name: str, **record) -> None:
        self.state["stages"][name] = dict(record, status="done")
        self._save_state()

    def _verify_artifact(self, stage: str) -> None:
        """A completed stage's artifact must still match its recorded
        checksum — resume never trusts bytes it cannot verify."""
        record = self._stage(stage)
        path = record.get("artifact")
        if not path or not os.path.exists(path):
            raise PipelineError(
                f"stage {stage!r} is marked done but its artifact "
                f"{path!r} is missing; remove {self.state_path} to rerun")
        digest = _sha256_file(path)
        if digest != record.get("sha256"):
            raise PipelineError(
                f"stage {stage!r} artifact {path} does not match its "
                f"recorded checksum (expected {record.get('sha256')}, "
                f"found {digest}); the checkpoint is corrupt or was "
                f"edited — remove {self.state_path} to rerun")

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def _design_preset(self):
        """See :func:`design_preset` (module level, shared with the
        service's jobs)."""
        return design_preset(self.config.design)

    def _run_parse(self):
        """Elaborate the design; verify fingerprints against any prior
        run of this state directory."""
        from .netlist import netlist_fingerprint
        self.config.echo(f"[parse] elaborating design "
                         f"{self.config.design!r}")
        preset = self._design_preset()
        sim_netlist, formal_netlist = preset[0], preset[1]
        fingerprints = {
            "sim": netlist_fingerprint(sim_netlist),
            "formal": netlist_fingerprint(formal_netlist),
        }
        previous = self._stage("parse")
        if previous.get("status") == "done" and \
                previous.get("fingerprints") != fingerprints:
            raise PipelineError(
                "the design's netlists changed since this pipeline state "
                "was recorded; its synth/check checkpoints would be stale "
                f"— use a fresh --state-dir (state: {self.state_path})")
        self._mark_done("parse", fingerprints=fingerprints)
        return preset

    def _run_synth(self, preset) -> None:
        if self._stage_done("synth"):
            self._verify_artifact("synth")
            self.stages_resumed.append("synth")
            self.config.echo(f"[synth] checkpoint verified: "
                             f"{self.model_path} (skipped)")
            return
        from .core.synthesizer import Rtl2Uspec
        from .formal import PropertyChecker, VerdictJournal
        from .uspec import format_model
        sim_netlist, formal_netlist, metadata, bound, max_k, candidates, \
            formal_cores = preset
        bound = self.config.bound if self.config.bound is not None else bound
        max_k = self.config.max_k if self.config.max_k is not None else max_k
        if self.config.candidates is not None:
            candidates = self.config.candidates
        checker = PropertyChecker(bound=bound, max_k=max_k)
        if self.config.checker_factory is not None:
            checker = self.config.checker_factory(checker)
        resume = os.path.exists(self.synth_journal) and self.config.resume
        journal = VerdictJournal(self.synth_journal, resume=resume)
        if journal.quarantined_records:
            self.config.echo(
                f"[synth] warning: {journal.quarantined_records} corrupt "
                f"journal record(s) quarantined to {journal.quarantined}; "
                f"they will be re-executed")
        if resume and len(journal):
            self.config.echo(f"[synth] resuming: {len(journal)} verdict(s) "
                             f"replayed from {self.synth_journal}")
        else:
            self.config.echo("[synth] synthesizing µspec model")
        try:
            with Rtl2Uspec(sim_netlist, formal_netlist, metadata,
                           checker=checker, formal_cores=formal_cores,
                           candidate_filter=candidates,
                           jobs=self.config.jobs, journal=journal,
                           check_timeout=self.config.synth_timeout
                           ) as synthesizer:
                result = synthesizer.synthesize()
        except KeyboardInterrupt as exc:
            journal.commit()
            raise InterruptedRun(
                f"pipeline interrupted during synth; {len(journal)} "
                f"verdict(s) checkpointed in {self.synth_journal}",
                resumable=True) from exc
        finally:
            journal.close()
        text = format_model(result.model)
        with open(self.model_path, "w", encoding="utf-8") as handle:
            handle.write(text)
        self._mark_done("synth", artifact=self.model_path,
                        sha256=_sha256_file(self.model_path))
        self.config.echo(f"[synth] model written to {self.model_path}")

    def _run_check(self) -> List:
        from .check import run_suite, suite_report_json
        from .litmus import load_suite
        from .uspec import parse_model
        # Always verify against the *artifact* (not the in-memory
        # model), so fresh and resumed runs key their journals — and
        # produce their reports — from the exact same bytes.
        with open(self.model_path, "r", encoding="utf-8") as handle:
            model = parse_model(handle.read())
        tests = load_suite()
        if self._stage_done("check"):
            # Verdicts still need re-deriving (journal replay makes it
            # cheap) so the PipelineResult carries them; only solving
            # is skipped.
            self._verify_artifact("check")
            self.stages_resumed.append("check")
            self.config.echo(f"[check] checkpoint verified: "
                             f"{self.report_path}")
        resume = os.path.exists(self.check_journal) and self.config.resume
        budget = Budget(timeout_seconds=self.config.check_timeout) \
            if self.config.check_timeout else None
        self.config.echo(f"[check] verifying {len(tests)} litmus test(s)")
        try:
            run = run_suite(model, tests, jobs=self.config.jobs,
                            engine=self.config.engine, budget=budget,
                            journal_path=self.check_journal, resume=resume,
                            fault_plan=self.config.check_fault_plan)
        except KeyboardInterrupt as exc:
            raise InterruptedRun(
                "pipeline interrupted during check; completed verdicts "
                f"are checkpointed in {self.check_journal}",
                resumable=True) from exc
        if run.quarantined_records:
            self.config.echo(
                f"[check] warning: {run.quarantined_records} corrupt "
                f"journal record(s) quarantined to {run.quarantined_path}; "
                f"they were re-executed")
        if run.resumed:
            self.config.echo(f"[check] resumed: {run.resumed} verdict(s) "
                             f"replayed from {self.check_journal}")
        # The deterministic report names the model by basename: the
        # state directory's path must not leak into checkpointed bytes.
        report = suite_report_json(run.verdicts,
                                   model=os.path.basename(self.model_path),
                                   engine=self.config.engine,
                                   engine_used=run.engine_used,
                                   deterministic=True)
        payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
        with open(self.report_path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        self._mark_done("check", artifact=self.report_path,
                        sha256=_sha256_file(self.report_path),
                        digest=report["digest"])
        self.config.echo(f"[check] report written to {self.report_path}")
        return run.verdicts

    # ------------------------------------------------------------------
    def run(self) -> PipelineResult:
        """Execute (or resume) the pipeline; see the module docstring.

        Raises :class:`InterruptedRun` on Ctrl-C/SIGTERM (state and
        journals committed — re-run with ``resume=True``) and
        :class:`PipelineError` when a checkpoint fails verification.
        """
        preset = self._run_parse()
        self._run_synth(preset)
        verdicts = self._run_check()
        return PipelineResult(
            model_path=self.model_path,
            report_path=self.report_path,
            verdicts=verdicts,
            digest=self._stage("check").get("digest", ""),
            stages_resumed=list(self.stages_resumed),
        )


def run_pipeline(config: PipelineConfig) -> PipelineResult:
    """Convenience wrapper: build and run one :class:`Pipeline`."""
    return Pipeline(config).run()
