"""Deterministic service-level chaos plans for ``repro serve``.

The resilience layer's :class:`~repro.resilience.faults.FaultPlan`
injects faults *below* the service — inside the worker pool that runs
solver tasks.  This module injects them *at* the service layer, where
the daemon, the fleet transport, the artifact store, and the job
ledger all meet: worker SIGKILL at frame boundaries, torn frames on
the wire, heartbeat stalls, slow-shard stragglers, store write
failures (ENOSPC via the store's byte-budget shim), and daemon
``kill -9`` between shard completions.

A plan is **seeded and replayable**: every decision is a pure function
of the plan and a monotonically increasing *dispatch site* index the
daemon assigns as it hands jobs (and shards) to workers.  Faults may
be pinned to explicit sites (``kill:3``), to every dispatch of one
shard index (``kill:@s1`` — the way to exhaust a shard's attempts and
force a partial report), or drawn at a seeded rate (``kill%=20``).
Running the same plan against the same submissions replays the same
fault sequence; the integration tests assert the job reports converge
to the fault-free digests anyway.

Spec grammar (comma-separated tokens)::

    seed=N               hash seed for the %-rate draws (default 0)
    kill:S               SIGKILL the worker at dispatch site S,
                         before it sends its result frame
    torn:S               the worker sends a torn frame (a length
                         header with a truncated body), then dies
    stall:S              the worker stops heartbeating and sleeps
                         (the supervisor's hang detector reaps it)
    slow:S               straggler: the worker sleeps, then completes
    kill:@sJ | torn:@sJ | stall:@sJ | slow:@sJ
                         same, on *every* dispatch of shard index J
    kill%=P | torn%=P | stall%=P | slow%=P
                         seeded rate: fire at P percent of sites
    daemon-kill:K        the daemon os._exit(137)s immediately after
                         recording its K-th completion (0-based) —
                         after the ledger append, before the merge/reply
    store-budget=N       workers' stores raise ENOSPC after N payload
                         bytes written (per worker process)
    stall-secs=F         how long a stalled worker sleeps (default 5)
    slow-secs=F          how long a straggler sleeps (default 0.25)
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..errors import ServiceError

#: worker-side fault kinds, in priority order when several match a site
FAULT_KINDS = ("kill", "torn", "stall", "slow")

#: a worker directive shipped inside the job frame:
#: ("kill",) | ("torn",) | ("stall", seconds) | ("slow", seconds)
ChaosFault = Tuple


@dataclass(frozen=True)
class ChaosPlan:
    """One parsed ``--inject-chaos`` plan.  Immutable and replayable:
    :meth:`fault_for` depends only on the plan and its arguments."""

    seed: int = 0
    #: fault kind -> explicit dispatch-site indices
    sites: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    #: fault kind -> shard indices hit on every dispatch (all attempts)
    shard_sites: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    #: fault kind -> seeded firing rate in [0, 1]
    rates: Dict[str, float] = field(default_factory=dict)
    #: per-worker store byte budget (None = no ENOSPC injection)
    store_budget: Optional[int] = None
    #: completion ordinals after which the daemon hard-exits
    daemon_kills: FrozenSet[int] = frozenset()
    stall_seconds: float = 5.0
    slow_seconds: float = 0.25
    #: the spec string this plan was parsed from (for logs/restarts)
    spec: str = ""

    # ------------------------------------------------------------------
    def _directive(self, kind: str) -> ChaosFault:
        if kind == "stall":
            return ("stall", self.stall_seconds)
        if kind == "slow":
            return ("slow", self.slow_seconds)
        return (kind,)

    def _rate_hit(self, kind: str, site: int) -> bool:
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        canonical = f"{self.seed}:{kind}:{site}".encode("utf-8")
        word = int.from_bytes(hashlib.sha256(canonical).digest()[:8], "big")
        return word / 2.0 ** 64 < rate

    def fault_for(self, site: int,
                  shard_index: Optional[int] = None) -> Optional[ChaosFault]:
        """The fault (if any) to inject at dispatch site ``site`` —
        ``shard_index`` is the shard being dispatched, or None for a
        whole job."""
        for kind in FAULT_KINDS:
            if site in self.sites.get(kind, frozenset()):
                return self._directive(kind)
            if shard_index is not None and \
                    shard_index in self.shard_sites.get(kind, frozenset()):
                return self._directive(kind)
            if self._rate_hit(kind, site):
                return self._directive(kind)
        return None

    def kill_daemon_after(self, completions: int) -> bool:
        """True when the plan schedules a daemon ``kill -9`` right
        after the ``completions``-th (0-based) recorded completion."""
        return completions in self.daemon_kills

    def describe(self) -> str:
        return self.spec or "(empty plan)"


def _parse_int(token: str, raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ServiceError(f"bad chaos token {token!r}: "
                           f"{raw!r} is not an integer")
    if value < 0:
        raise ServiceError(f"bad chaos token {token!r}: must be >= 0")
    return value


def _parse_float(token: str, raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise ServiceError(f"bad chaos token {token!r}: "
                           f"{raw!r} is not a number")
    if value < 0:
        raise ServiceError(f"bad chaos token {token!r}: must be >= 0")
    return value


def parse_chaos_spec(spec: str) -> ChaosPlan:
    """Parse one ``--inject-chaos`` spec; see the module docstring for
    the grammar.  Raises :class:`ServiceError` on anything malformed
    (submission-time validation, not worker-discovery time)."""
    seed = 0
    sites: Dict[str, set] = {kind: set() for kind in FAULT_KINDS}
    shard_sites: Dict[str, set] = {kind: set() for kind in FAULT_KINDS}
    rates: Dict[str, float] = {}
    store_budget: Optional[int] = None
    daemon_kills: set = set()
    stall_seconds = 5.0
    slow_seconds = 0.25
    for token in filter(None, (part.strip()
                               for part in (spec or "").split(","))):
        if token.startswith("seed="):
            seed = _parse_int(token, token[len("seed="):])
        elif token.startswith("store-budget="):
            store_budget = _parse_int(token, token[len("store-budget="):])
        elif token.startswith("stall-secs="):
            stall_seconds = _parse_float(token, token[len("stall-secs="):])
        elif token.startswith("slow-secs="):
            slow_seconds = _parse_float(token, token[len("slow-secs="):])
        elif token.startswith("daemon-kill:"):
            daemon_kills.add(_parse_int(token,
                                        token[len("daemon-kill:"):]))
        else:
            for kind in FAULT_KINDS:
                if token.startswith(f"{kind}%="):
                    percent = _parse_float(token, token[len(kind) + 2:])
                    if percent > 100:
                        raise ServiceError(f"bad chaos token {token!r}: "
                                           f"rate is a percentage (0-100)")
                    rates[kind] = percent / 100.0
                    break
                if token.startswith(f"{kind}:@s"):
                    shard_sites[kind].add(
                        _parse_int(token, token[len(kind) + 3:]))
                    break
                if token.startswith(f"{kind}:"):
                    sites[kind].add(_parse_int(token, token[len(kind) + 1:]))
                    break
            else:
                raise ServiceError(
                    f"unknown chaos token {token!r} (expected seed=, "
                    f"store-budget=, stall-secs=, slow-secs=, "
                    f"daemon-kill:, or one of {FAULT_KINDS} with "
                    f":SITE, :@sSHARD, or %=RATE)")
    return ChaosPlan(
        seed=seed,
        sites={k: frozenset(v) for k, v in sites.items() if v},
        shard_sites={k: frozenset(v) for k, v in shard_sites.items() if v},
        rates=rates,
        store_budget=store_budget,
        daemon_kills=frozenset(daemon_kills),
        stall_seconds=stall_seconds,
        slow_seconds=slow_seconds,
        spec=spec or "")
