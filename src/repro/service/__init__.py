"""Verification-as-a-service: the ``repro serve`` daemon.

Every one-shot CLI invocation pays the same cold-start tax: elaborate
the design, blast the cones, ground the suite — then throw all of it
away.  This package keeps that work alive between requests:

* :mod:`repro.service.store` — a content-addressed on-disk artifact
  store (sha256-verified, atomically written) that makes VerdictCache
  and BlastCache entries persistent and shared across runs, clients,
  and daemon restarts;
* :mod:`repro.service.caches` — drop-in persistent implementations of
  the formal layer's verdict/bitblast caches, backed by the store;
* :mod:`repro.service.ledger` — the crash-safe job ledger (built on
  :class:`repro.resilience.journal.Journal`): ``kill -9`` the daemon
  at any point and a restart resumes every in-flight job to
  byte-identical artifacts;
* :mod:`repro.service.jobs` — the job kinds (parse/synth/check/sweep),
  parameter validation, and the warm per-worker execution context that
  keeps elaborated netlists and checkers resident between jobs;
* :mod:`repro.service.fleet` — the supervised warm worker fleet:
  heartbeats, hang/crash detection, per-job deadlines degrading to
  first-class UNKNOWN, and capped exponential respawn backoff;
* :mod:`repro.service.daemon` — the single-threaded select-loop server
  over a Unix domain socket: job queue with admission control and
  backpressure, graceful drain on SIGTERM;
* :mod:`repro.service.client` — the line-JSON protocol client used by
  ``repro submit`` / ``status`` / ``result``;
* :mod:`repro.service.shards` — fleet sharding for sweep/check jobs:
  deterministic contiguous stripes dispatched across idle workers and
  merged back into the byte-identical single-worker artifact, with
  exhausted shards degrading to a first-class partial-UNKNOWN report;
* :mod:`repro.service.chaos` — seeded, replayable service-level fault
  plans (``repro serve --inject-chaos``): worker kills at frame
  boundaries, torn frames, heartbeat stalls, stragglers, store ENOSPC
  budgets, and daemon ``kill -9`` between shard completions.

The invariant carried over from the rest of the repo: the service may
change wall-clock time and recovery statistics, never verdicts — a
check-suite job's report digest is byte-identical to a one-shot
``repro check`` of the same model.
"""

from .chaos import ChaosPlan, parse_chaos_spec
from .client import ServiceClient
from .daemon import Daemon, JobQueue, ServeConfig, default_socket_path
from .jobs import JOB_KINDS, validate_params
from .ledger import JobLedger
from .shards import (MAX_SHARDS, SHARDABLE_KINDS, merge_check_shards,
                     merge_sweep_shards, shard_bounds)
from .store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "ChaosPlan",
    "Daemon",
    "JobLedger",
    "JobQueue",
    "JOB_KINDS",
    "MAX_SHARDS",
    "SHARDABLE_KINDS",
    "ServeConfig",
    "ServiceClient",
    "default_socket_path",
    "merge_check_shards",
    "merge_sweep_shards",
    "parse_chaos_spec",
    "shard_bounds",
    "validate_params",
]
