"""Job kinds, parameter validation, and warm execution contexts.

A job is ``(kind, params)`` where ``kind`` is one of
:data:`JOB_KINDS` and ``params`` is a JSON-safe dict validated and
normalized by :func:`validate_params` *at submission time* — a bad
request is rejected at the socket, never discovered by a worker.

Execution (:func:`execute_job`) is **deterministic**: the result
summary and artifact bytes depend only on ``(kind, params)`` and the
repo's bundled designs/suite.  That is the property the whole
resilience story rests on — a job re-run after a daemon ``kill -9``,
or re-dispatched after its worker died, reproduces byte-identical
artifacts, so crash recovery is indistinguishable from slowness.

:class:`WorkerContext` is the warm state a service worker keeps
between jobs — the reason ``repro serve`` exists:

* elaborated design netlists (``parse`` once, reuse for every synth);
* one :class:`~repro.formal.PropertyChecker` per (design, bound, k,
  engine), whose retained solvers and in-memory BlastCache survive
  across jobs;
* the persistent store tier (:mod:`repro.service.caches`), so verdict
  and bitblast reuse also crosses process and daemon restarts.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from ..errors import ServiceError
from ..resilience import Budget
from .caches import PersistentBlastCache, PersistentVerdictCache
from .store import ArtifactStore

JOB_KINDS = ("parse", "synth", "check", "sweep", "generate", "bench")

#: designs a parse/synth job may name (mirrors ``repro pipeline``)
JOB_DESIGNS = ("multi", "unicore")

#: workloads a bench job may time against the warm fleet
BENCH_WORKLOADS = ("check", "synth")

#: per-kind allowed parameter names and defaults (None = optional)
_PARAM_DEFAULTS: Dict[str, Dict[str, object]] = {
    "parse": {"design": "multi"},
    "synth": {"design": "multi", "bound": None, "max_k": None,
              "candidates": None, "engine": "incremental", "timeout": None},
    "check": {"model_text": None, "tests": None, "engine": "fresh",
              "timeout": None, "shards": None},
    "sweep": {"model_text": None, "threads": 2, "length": 2, "limit": None,
              "engine": "incremental", "timeout": None, "shards": None,
              "generate": None},
    "generate": {"spec": "threads=2,len=2", "count": 1000, "tests": False},
    "bench": {"workload": "check", "design": "multi", "tests": None,
              "repeat": 2, "engine": None, "timeout": None},
}


def validate_params(kind: str, params: Optional[Dict]) -> Dict:
    """Normalize one submission's parameters; raise
    :class:`ServiceError` on anything malformed.  The returned dict has
    every key of the kind's schema (defaults filled in), in canonical
    form — two submissions asking for the same work validate to equal
    dicts."""
    if kind not in JOB_KINDS:
        raise ServiceError(f"unknown job kind {kind!r} "
                           f"(expected one of {JOB_KINDS})")
    params = dict(params or {})
    schema = _PARAM_DEFAULTS[kind]
    unknown = sorted(set(params) - set(schema))
    if unknown:
        raise ServiceError(f"unknown {kind} parameter(s): "
                           f"{', '.join(unknown)}")
    normalized = dict(schema)
    normalized.update(params)
    if kind in ("parse", "synth") and \
            normalized["design"] not in JOB_DESIGNS:
        raise ServiceError(f"unknown design {normalized['design']!r} "
                           f"(expected one of {JOB_DESIGNS})")
    for key in ("bound", "max_k", "threads", "length", "limit", "count",
                "shards", "repeat"):
        if key in normalized and normalized[key] is not None:
            if not isinstance(normalized[key], int) or \
                    isinstance(normalized[key], bool) or normalized[key] < 0:
                raise ServiceError(f"{kind} parameter {key!r} must be a "
                                   f"non-negative integer")
    if "shards" in normalized and normalized["shards"] is not None:
        from .shards import MAX_SHARDS
        if normalized["shards"] > MAX_SHARDS:
            raise ServiceError(f"{kind} parameter 'shards' must be at "
                               f"most {MAX_SHARDS}")
    if kind == "sweep" and normalized.get("generate") is not None:
        if not isinstance(normalized["generate"], str):
            raise ServiceError("sweep parameter 'generate' must be a "
                               "corpus spec string")
        from ..check.exhaustive import normalize_limit
        from ..errors import LitmusError
        from ..litmus.generator import parse_spec
        try:
            parse_spec(normalized["generate"])
        except LitmusError as exc:
            raise ServiceError(f"bad sweep generate spec: {exc}")
        if normalize_limit(normalized["limit"]) is None:
            raise ServiceError("sweep with 'generate' needs a positive "
                               "'limit' (generated corpora are unbounded)")
    if kind == "bench":
        if normalized["workload"] not in BENCH_WORKLOADS:
            raise ServiceError(f"unknown bench workload "
                               f"{normalized['workload']!r} (expected one "
                               f"of {BENCH_WORKLOADS})")
        if normalized["design"] not in JOB_DESIGNS:
            raise ServiceError(f"unknown design {normalized['design']!r} "
                               f"(expected one of {JOB_DESIGNS})")
        if not normalized["repeat"]:
            normalized["repeat"] = 1
    if kind == "generate":
        if not isinstance(normalized["spec"], str):
            raise ServiceError("generate parameter 'spec' must be a "
                               "corpus spec string")
        if not isinstance(normalized["tests"], bool):
            raise ServiceError("generate parameter 'tests' must be a "
                               "boolean")
        from ..errors import LitmusError
        from ..litmus.generator import parse_spec
        try:
            parse_spec(normalized["spec"])
        except LitmusError as exc:
            raise ServiceError(f"bad generate spec: {exc}")
    if normalized.get("timeout") is not None:
        if not isinstance(normalized["timeout"], (int, float)) or \
                isinstance(normalized["timeout"], bool) or \
                normalized["timeout"] <= 0:
            raise ServiceError(f"{kind} parameter 'timeout' must be a "
                               f"positive number of seconds")
    if normalized.get("model_text") is not None and \
            not isinstance(normalized["model_text"], str):
        raise ServiceError(f"{kind} parameter 'model_text' must be the "
                           f"model file's text")
    # ("tests" is a bool for generate jobs — validated above — and a
    # list of test names for check jobs.)
    tests = normalized.get("tests")
    if tests is not None and kind != "generate":
        if not isinstance(tests, list) or \
                not all(isinstance(name, str) for name in tests):
            raise ServiceError("check parameter 'tests' must be a list "
                               "of test names")
    engine = normalized.get("engine")
    if engine is not None and engine not in ("fresh", "incremental"):
        raise ServiceError(f"unknown engine {engine!r} "
                           f"(expected 'fresh' or 'incremental')")
    try:
        json.dumps(normalized)
    except (TypeError, ValueError):
        raise ServiceError(f"{kind} parameters are not JSON-serializable")
    return normalized


# ----------------------------------------------------------------------
# Warm execution context (lives in one worker process)
# ----------------------------------------------------------------------
class WorkerContext:
    """Per-worker warm state: elaborated designs, retained checkers,
    and the persistent store tier."""

    def __init__(self, store_root: str, blast_capacity: int = 64,
                 store_byte_budget: Optional[int] = None):
        self.store = ArtifactStore(store_root,
                                   byte_budget=store_byte_budget)
        self.blast_capacity = blast_capacity
        self._presets: Dict[str, Tuple] = {}
        self._checkers: Dict[Tuple, object] = {}
        #: jobs executed by this context (recycling bookkeeping)
        self.jobs_executed = 0

    def preset(self, design: str) -> Tuple:
        """The (cached) elaborated design preset."""
        if design not in self._presets:
            from ..pipeline import design_preset
            self._presets[design] = design_preset(design)
        return self._presets[design]

    def checker(self, design: str, bound: int, max_k: int, engine: str,
                timeout: Optional[float]):
        """One caching checker per problem shape, kept warm across
        jobs.  Its blast cache and verdict cache are store-backed, so a
        cold *process* still starts warm from disk."""
        key = (design, bound, max_k, engine)
        if key not in self._checkers:
            from ..formal import CachingPropertyChecker, PropertyChecker
            engine_checker = PropertyChecker(
                bound=bound, max_k=max_k, engine=engine,
                blast_cache=PersistentBlastCache(self.store,
                                                 self.blast_capacity))
            self._checkers[key] = CachingPropertyChecker(
                engine_checker, PersistentVerdictCache(self.store),
                need_traces=True)
        checker = self._checkers[key]
        # Per-job budget without losing the warm caches.
        checker.checker.timeout_seconds = timeout
        return checker

    def close(self) -> None:
        try:
            self.store.close()
        except OSError:
            # Counter folds are diagnostics; a full disk (or the chaos
            # byte budget) must not turn a clean worker exit into a
            # crash.
            pass


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_job(kind: str, params: Dict, ctx: WorkerContext
                ) -> Tuple[Dict, Optional[bytes], Optional[str]]:
    """Run one validated job; returns ``(summary, artifact_bytes,
    artifact_name)``.  Summary and artifact are deterministic functions
    of ``(kind, params)``; errors raise (the fleet maps them to a
    ``failed`` job)."""
    ctx.jobs_executed += 1
    if kind == "parse":
        return _run_parse(params, ctx)
    if kind == "synth":
        return _run_synth(params, ctx)
    if kind == "check":
        return _run_check(params, ctx)
    if kind == "sweep":
        return _run_sweep(params, ctx)
    if kind == "generate":
        return _run_generate(params, ctx)
    if kind == "bench":
        return _run_bench(params, ctx)
    raise ServiceError(f"unknown job kind {kind!r}")


def _load_model(model_text: Optional[str]):
    from ..uspec import parse_model
    if model_text:
        return parse_model(model_text)
    from ..designs.models import load_reference_model
    return load_reference_model()


def _run_parse(params: Dict, ctx: WorkerContext):
    from ..netlist import netlist_fingerprint
    sim_netlist, formal_netlist = ctx.preset(params["design"])[:2]
    summary = {
        "design": params["design"],
        "fingerprints": {
            "sim": netlist_fingerprint(sim_netlist),
            "formal": netlist_fingerprint(formal_netlist),
        },
        "stats": sim_netlist.stats(),
    }
    artifact = (json.dumps(summary, indent=2, sort_keys=True) + "\n"
                ).encode("utf-8")
    return summary, artifact, "parse.json"


def _run_synth(params: Dict, ctx: WorkerContext):
    from ..core.synthesizer import Rtl2Uspec
    from ..uspec import format_model
    sim_netlist, formal_netlist, metadata, bound, max_k, candidates, \
        formal_cores = ctx.preset(params["design"])
    bound = params["bound"] if params["bound"] is not None else bound
    max_k = params["max_k"] if params["max_k"] is not None else max_k
    if params["candidates"] is not None:
        candidates = params["candidates"]
    checker = ctx.checker(params["design"], bound, max_k,
                          params["engine"], params["timeout"])
    with Rtl2Uspec(sim_netlist, formal_netlist, metadata,
                   checker=checker, formal_cores=formal_cores,
                   candidate_filter=candidates, jobs=1) as synthesizer:
        result = synthesizer.synthesize()
    engine_stats = checker.checker.stats
    blast_cache = checker.checker._blast_cache
    summary = {
        "design": params["design"],
        "verdict_digest": result.verdict_digest(),
        "engine": {
            "checks": int(engine_stats.get("checks", 0)),
            "blast_hits": int(engine_stats.get("blast_hits", 0)),
            "blast_misses": int(engine_stats.get("blast_misses", 0)),
        },
        "store": {
            "blast_hits": getattr(blast_cache, "store_hits", 0),
            "verdict_hits": getattr(checker.cache, "store_hits", 0),
        },
    }
    artifact = format_model(result.model).encode("utf-8")
    return summary, artifact, "model.uarch"


def _run_check(params: Dict, ctx: WorkerContext):
    from ..check import run_suite, suite_digest, suite_report_json
    from ..litmus import load_suite, resolve_tests
    from .shards import check_report_bytes, shard_address, shard_bounds
    model = _load_model(params["model_text"])
    tests = resolve_tests(params["tests"]) if params["tests"] \
        else load_suite()
    address = shard_address(params)
    if address is not None:
        start, end = shard_bounds(len(tests), *address)
        tests = tests[start:end]
    budget = Budget(timeout_seconds=params["timeout"]) \
        if params["timeout"] else None
    run = run_suite(model, tests, jobs=1, engine=params["engine"],
                    budget=budget)
    report = suite_report_json(run.verdicts, model="submitted",
                               engine=params["engine"],
                               engine_used=run.engine_used,
                               deterministic=True)
    if address is not None:
        # A shard ships its slice of the deterministic report; the
        # daemon concatenates slices (contiguous, in shard order) and
        # rebuilds the byte-identical single-worker report.json.
        from .shards import CHECK_SHARD_SCHEMA
        payload = {
            "schema": CHECK_SHARD_SCHEMA,
            "shard": address[0],
            "of": address[1],
            "engine_used": run.engine_used,
            "tests": report["tests"],
        }
        summary = {
            "shard": address[0],
            "of": address[1],
            "tests": len(run.verdicts),
            "failures": report["failures"],
            "undecided": report["undecided"],
        }
        artifact = (json.dumps(payload, indent=2, sort_keys=True) + "\n"
                    ).encode("utf-8")
        return summary, artifact, f"shard-{address[0]}.json"
    summary = {
        "digest": suite_digest(run.verdicts),
        "tests": len(run.verdicts),
        "failures": report["failures"],
        "undecided": report["undecided"],
        "passed": report["failures"] == 0 and report["undecided"] == 0,
    }
    return summary, check_report_bytes(report), "report.json"


def _run_generate(params: Dict, ctx: WorkerContext):
    import itertools

    from ..litmus.generator import (corpus_digest, iter_programs, iter_tests,
                                    parse_spec)
    spec = parse_spec(params["spec"])
    count = params["count"] or None
    if params["tests"]:
        stream = (test.name for test in iter_tests(spec))
    else:
        stream = ("gen-" + fp for fp, _ in iter_programs(spec))
    if count is not None:
        stream = itertools.islice(stream, count)
    names = list(stream)
    digest = corpus_digest(name[len("gen-"):] for name in names)
    payload = {
        "schema": "repro-litmus-generate/1",
        "spec": spec.describe(),
        "tests": bool(params["tests"]),
        "count": len(names),
        "digest": digest,
        "names": names,
    }
    summary = {
        "spec": spec.describe(),
        "tests": bool(params["tests"]),
        "count": len(names),
        "digest": digest,
        "sample": names[:10],
    }
    artifact = (json.dumps(payload, indent=2, sort_keys=True) + "\n"
                ).encode("utf-8")
    return summary, artifact, "corpus.json"


def _run_bench(params: Dict, ctx: WorkerContext):
    """Time a workload against this worker's *warm* context.

    The one job kind whose artifact is deliberately not deterministic:
    the per-repeat wall times are the product.  The digests inside it
    still are, and a re-run after a crash produces the same verdicts —
    only the timings differ.  ``benchmarks/bench_check_suite.py
    --serve`` submits these to record warm-fleet rows (store blast
    hits, shard counts) into ``BENCH_check.json``.
    """
    import time
    repeat = params["repeat"] or 1
    times_ms: list = []
    if params["workload"] == "synth":
        inner = {"design": params["design"], "bound": None, "max_k": None,
                 "candidates": None,
                 "engine": params["engine"] or "incremental",
                 "timeout": params["timeout"]}
        summary = {}
        for _ in range(repeat):
            started = time.perf_counter()
            summary, _artifact, _name = _run_synth(inner, ctx)
            times_ms.append(round((time.perf_counter() - started) * 1e3, 3))
        digest = summary.get("verdict_digest", "")
        store_counters = summary.get("store", {})
        engine_counters = summary.get("engine", {})
        detail = {"design": params["design"]}
    else:
        from ..check import run_suite, suite_digest
        from ..litmus import load_suite, resolve_tests
        model = _load_model(None)
        tests = resolve_tests(params["tests"]) if params["tests"] \
            else load_suite()
        budget = Budget(timeout_seconds=params["timeout"]) \
            if params["timeout"] else None
        digest = ""
        for _ in range(repeat):
            started = time.perf_counter()
            run = run_suite(model, tests, jobs=1,
                            engine=params["engine"] or "fresh",
                            budget=budget)
            times_ms.append(round((time.perf_counter() - started) * 1e3, 3))
            digest = suite_digest(run.verdicts)
        store_counters = {"blast_hits": 0, "verdict_hits": 0}
        engine_counters = {}
        detail = {"tests": len(tests)}
    payload = {
        "schema": "repro-bench-service/1",
        "workload": params["workload"],
        "repeat": repeat,
        "times_ms": times_ms,
        "digest": digest,
        "engine": engine_counters,
        "store": store_counters,
        **detail,
    }
    summary = {
        "workload": params["workload"],
        "repeat": repeat,
        "digest": digest,
        "warm_ms": times_ms[-1] if times_ms else 0.0,
        "cold_ms": times_ms[0] if times_ms else 0.0,
        "store": store_counters,
    }
    artifact = (json.dumps(payload, indent=2, sort_keys=True) + "\n"
                ).encode("utf-8")
    return summary, artifact, "bench.json"


def _run_sweep(params: Dict, ctx: WorkerContext):
    from ..check import verify_exactness
    from .shards import (SWEEP_SHARD_SCHEMA, shard_address, shard_bounds,
                         sweep_payload_bytes, sweep_program_list)
    model = _load_model(params["model_text"])
    budget = Budget(timeout_seconds=params["timeout"]) \
        if params["timeout"] else None
    programs = sweep_program_list(params)
    address = shard_address(params)
    if address is not None:
        start, end = shard_bounds(len(programs), *address)
        programs = programs[start:end]
    report = verify_exactness(
        model, limit=None, jobs=1, engine=params["engine"],
        budget=budget, programs=programs)
    if address is not None:
        payload = {
            "schema": SWEEP_SHARD_SCHEMA,
            "shard": address[0],
            "of": address[1],
            "programs": report.programs,
            "outcomes_checked": report.outcomes_checked,
            "unsound": [formatted for formatted, _ in report.unsound],
            "overstrict": [formatted for formatted, _ in report.overstrict],
            "undecided": [formatted for formatted, _ in report.undecided],
        }
        summary = {
            "shard": address[0],
            "of": address[1],
            "programs": report.programs,
            "outcomes_checked": report.outcomes_checked,
            "undecided": len(report.undecided),
        }
        artifact = (json.dumps(payload, indent=2, sort_keys=True) + "\n"
                    ).encode("utf-8")
        return summary, artifact, f"shard-{address[0]}.json"
    payload = {
        "schema": "repro-check-sweep/2",
        "digest": report.digest(),
        "programs": report.programs,
        "outcomes_checked": report.outcomes_checked,
        "exact": report.exact,
        "unsound": [formatted for formatted, _ in report.unsound],
        "overstrict": [formatted for formatted, _ in report.overstrict],
        "undecided": [formatted for formatted, _ in report.undecided],
    }
    summary = {
        "digest": report.digest(),
        "programs": report.programs,
        "outcomes_checked": report.outcomes_checked,
        "exact": report.exact,
        "undecided": len(report.undecided),
    }
    return summary, sweep_payload_bytes(payload), "sweep.json"
