"""Fleet sharding for sweep/check service jobs.

A sweep job used to occupy one warm worker end-to-end no matter how
many sat idle.  This module splits one submitted job into
``shards`` deterministic chunks the daemon dispatches across the
fleet, then merges the shard results back into **the byte-identical
single-worker artifact** — same digest, same JSON bytes.

The design keeps shards cheap and the merge exact:

* a shard is addressed, not serialized: the dispatch carries only
  ``(shard_index, shard_count)`` (the hidden ``_shard`` parameter) and
  the worker re-derives the full deterministic member list — the same
  :func:`~repro.check.exhaustive.enumerate_sweep_programs` /
  generator-spec enumeration / suite resolution every path uses — and
  takes its contiguous stripe (:func:`shard_bounds`);
* stripes are contiguous and merged in shard order, so concatenating
  shard results reproduces exactly the single-worker enumeration
  order; the merged payload is serialized by the *same* code that
  serializes the unsharded artifact (:func:`sweep_payload_bytes`,
  :func:`check_report_bytes`), which is what makes byte-identity a
  structural property rather than a test-enforced coincidence;
* a shard whose worker crashed/hung is re-dispatched up to
  ``--max-attempts``; past that its members degrade to first-class
  UNKNOWN in a **partial** report — ``"partial": true``, the lost
  members enumerated, job state ``unknown`` (exit code 1) — instead
  of failing the whole job and discarding the shards that finished.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ServiceError

#: job kinds that accept a ``shards`` parameter
SHARDABLE_KINDS = ("check", "sweep")

#: upper bound on the shard fan-out of one job (sanity, not tuning)
MAX_SHARDS = 64

#: shard artifact schemas (worker -> daemon, never user-facing)
CHECK_SHARD_SCHEMA = "repro-check-shard/1"
SWEEP_SHARD_SCHEMA = "repro-sweep-shard/1"

_PROJECTION_KEYS = ("name", "status", "observable", "permitted_sc",
                    "passed", "overstrict")


# ----------------------------------------------------------------------
# Shard addressing
# ----------------------------------------------------------------------
def normalize_shards(params: Dict) -> int:
    """The effective shard count of a submission (>= 1)."""
    shards = params.get("shards")
    if shards is None or shards == 0:
        return 1
    return int(shards)


def shard_id(job_id: str, index: int) -> str:
    """The fleet-facing id of one shard dispatch."""
    return f"{job_id}#s{index}"


def split_shard_id(dispatch_id: str) -> Optional[Tuple[str, int]]:
    """``(parent_job_id, shard_index)`` or None for a whole job."""
    if "#s" not in dispatch_id:
        return None
    parent, _, suffix = dispatch_id.rpartition("#s")
    try:
        return parent, int(suffix)
    except ValueError:
        return None


def shard_bounds(total: int, index: int, count: int) -> Tuple[int, int]:
    """The contiguous ``[start, end)`` stripe of shard ``index`` over
    ``total`` members.  Stripes are balanced (sizes differ by at most
    one), cover everything, and never overlap — concatenating them in
    index order reproduces the full list."""
    if count <= 0 or not 0 <= index < count:
        raise ServiceError(f"bad shard address {index}/{count}")
    base, remainder = divmod(total, count)
    start = index * base + min(index, remainder)
    end = start + base + (1 if index < remainder else 0)
    return start, end


def shard_params(params: Dict, index: int, count: int) -> Dict:
    """The parameter dict dispatched for one shard: the parent's
    params minus the ``shards`` fan-out key, plus the hidden
    ``_shard`` address the worker slices by."""
    sliced = {key: value for key, value in params.items()
              if key != "shards"}
    sliced["_shard"] = [index, count]
    return sliced


def shard_address(params: Dict) -> Optional[Tuple[int, int]]:
    """The ``(index, count)`` a worker was dispatched, or None."""
    address = params.get("_shard")
    if address is None:
        return None
    index, count = address
    return int(index), int(count)


# ----------------------------------------------------------------------
# Member enumeration (daemon side, for partial reports)
# ----------------------------------------------------------------------
def format_program(program) -> str:
    """One-line deterministic rendering of a sweep program, used to
    name lost-shard members in partial reports."""
    threads = []
    for thread in program:
        parts = []
        for access in thread:
            if access.kind == "W":
                parts.append(f"W {access.addr}={access.value}")
            elif access.kind == "F":
                parts.append("F")
            else:
                parts.append(f"R {access.addr}->{access.reg}")
        threads.append(" ; ".join(parts))
    return " | ".join(threads)


def sweep_program_list(params: Dict) -> List:
    """The deterministic program list one sweep submission covers —
    the single source both the unsharded run and every shard slice
    from.  ``generate`` substitutes a generator-spec corpus for the
    built-in shape enumeration (``limit`` caps either)."""
    from ..check.exhaustive import enumerate_sweep_programs, normalize_limit
    spec_text = params.get("generate")
    if not spec_text:
        return enumerate_sweep_programs(params["threads"], params["length"],
                                        ("x", "y"), params["limit"])
    from ..litmus.generator import iter_programs, parse_spec
    cap = normalize_limit(params["limit"])
    if cap is None:
        raise ServiceError("sweep with 'generate' needs a positive "
                           "'limit' (generated corpora are unbounded)")
    programs = []
    for _fingerprint, program in iter_programs(parse_spec(spec_text)):
        programs.append(program)
        if len(programs) >= cap:
            break
    return programs


def shard_member_names(kind: str, params: Dict, index: int,
                       count: int) -> List[str]:
    """The display names of one shard's members (test names for check,
    program renderings for sweep) — computed lazily, only when a lost
    shard must be enumerated in a partial report."""
    if kind == "check":
        from ..litmus import load_suite, resolve_tests
        tests = resolve_tests(params["tests"]) if params.get("tests") \
            else load_suite()
        members = [test.name for test in tests]
    elif kind == "sweep":
        members = [format_program(program)
                   for program in sweep_program_list(params)]
    else:
        raise ServiceError(f"job kind {kind!r} is not shardable")
    start, end = shard_bounds(len(members), index, count)
    return members[start:end]


# ----------------------------------------------------------------------
# Artifact assembly (single source for sharded AND unsharded paths)
# ----------------------------------------------------------------------
def _artifact_bytes(payload: Dict) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n"
            ).encode("utf-8")


def sweep_payload_bytes(payload: Dict) -> bytes:
    """Serialize one ``repro-check-sweep/2`` payload — shared by
    :func:`repro.service.jobs._run_sweep` and the shard merge so the
    two can only ever agree byte-for-byte."""
    return _artifact_bytes(payload)


def check_report_bytes(report: Dict) -> bytes:
    """Serialize one ``repro-check-suite/3`` report (same sharing)."""
    return _artifact_bytes(report)


def check_digest_from_entries(entries: Sequence[Dict]) -> str:
    """:func:`repro.check.verifier.suite_digest` recomputed from
    report test entries instead of live verdicts — same canonical
    projection, same bytes, same hash."""
    projection = [{key: entry[key] for key in _PROJECTION_KEYS}
                  for entry in entries]
    canonical = json.dumps(projection, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def assemble_check_report(entries: Sequence[Dict], engine: str,
                          engine_used: str) -> Dict:
    """Rebuild the deterministic ``repro-check-suite/3`` report from
    per-test entries (the shape :func:`suite_report_json` emits with
    ``deterministic=True`` and the service's fixed ``model`` label)."""
    return {
        "schema": "repro-check-suite/3",
        "model": "submitted",
        "engine": engine,
        "engine_used": engine_used or engine,
        "sat_core": "",
        "digest": check_digest_from_entries(entries),
        "failures": sum(1 for e in entries
                        if e["status"] == "DECIDED" and e["observable"]
                        and not e["permitted_sc"]),
        "undecided": sum(1 for e in entries if e["status"] != "DECIDED"),
        "tests": list(entries),
    }


def unknown_check_entry(name: str) -> Dict:
    """The placeholder entry for a test whose shard exhausted its
    attempts: first-class UNKNOWN, conservatively not a pass."""
    return {
        "name": name,
        "status": "UNKNOWN",
        "observable": False,
        "permitted_sc": False,
        "passed": False,
        "overstrict": False,
        "stats": {},
    }


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------
def merge_check_shards(params: Dict, payloads: Dict[int, Dict],
                       lost: Dict[int, List[str]]
                       ) -> Tuple[str, Dict, bytes, str]:
    """Merge check shard payloads (+ lost-shard member names) into the
    final job result: ``(state, summary, artifact_bytes, name)``.

    With no lost shards the artifact is byte-identical to the
    single-worker ``report.json``; with lost shards it is a partial
    report whose UNKNOWN set is exactly the lost shards' members.
    """
    count = len(payloads) + len(lost)
    entries: List[Dict] = []
    engine_used = ""
    for index in range(count):
        if index in payloads:
            shard = payloads[index]
            entries.extend(shard["tests"])
            engine_used = engine_used or shard.get("engine_used", "")
        else:
            entries.extend(unknown_check_entry(name)
                           for name in lost[index])
    report = assemble_check_report(entries, params["engine"], engine_used)
    if lost:
        report["partial"] = True
        report["unknown_shards"] = sorted(lost)
        report["unknown_tests"] = [name for index in sorted(lost)
                                   for name in lost[index]]
    summary = {
        "digest": report["digest"],
        "tests": len(entries),
        "failures": report["failures"],
        "undecided": report["undecided"],
        "passed": report["failures"] == 0 and report["undecided"] == 0,
        "shards": count,
    }
    if lost:
        summary["partial"] = True
        summary["unknown_shards"] = sorted(lost)
    state = "unknown" if report["undecided"] else "done"
    return state, summary, check_report_bytes(report), "report.json"


def merge_sweep_shards(params: Dict, payloads: Dict[int, Dict],
                       lost: Dict[int, List[str]]
                       ) -> Tuple[str, Dict, bytes, str]:
    """Merge sweep shard payloads into the final ``sweep.json``:
    byte-identical to the single-worker artifact when nothing was
    lost, a ``partial: true`` report naming the lost programs (the
    UNKNOWN set) otherwise."""
    count = len(payloads) + len(lost)
    programs = outcomes = 0
    unsound: List[str] = []
    overstrict: List[str] = []
    undecided: List[str] = []
    unknown_programs: List[str] = []
    for index in range(count):
        if index in payloads:
            shard = payloads[index]
            programs += shard["programs"]
            outcomes += shard["outcomes_checked"]
            unsound.extend(shard["unsound"])
            overstrict.extend(shard["overstrict"])
            undecided.extend(shard["undecided"])
        else:
            programs += len(lost[index])
            unknown_programs.extend(lost[index])
    digest = _sweep_digest(programs, outcomes, unsound, overstrict,
                           undecided)
    exact = not unsound and not overstrict and not undecided \
        and not unknown_programs
    payload = {
        "schema": "repro-check-sweep/2",
        "digest": digest,
        "programs": programs,
        "outcomes_checked": outcomes,
        "exact": exact,
        "unsound": unsound,
        "overstrict": overstrict,
        "undecided": undecided,
    }
    if lost:
        payload["partial"] = True
        payload["unknown_shards"] = sorted(lost)
        payload["unknown_programs"] = unknown_programs
    summary = {
        "digest": digest,
        "programs": programs,
        "outcomes_checked": outcomes,
        "exact": exact,
        "undecided": len(undecided) + len(unknown_programs),
        "shards": count,
    }
    if lost:
        summary["partial"] = True
        summary["unknown_shards"] = sorted(lost)
    state = "unknown" if summary["undecided"] else "done"
    return state, summary, sweep_payload_bytes(payload), "sweep.json"


def _sweep_digest(programs: int, outcomes: int, unsound: Sequence[str],
                  overstrict: Sequence[str],
                  undecided: Sequence[str]) -> str:
    """:meth:`ExactnessReport.digest` recomputed from the formatted
    projections shards carry (same canonical JSON, same hash)."""
    canonical = json.dumps({
        "programs": programs,
        "outcomes_checked": outcomes,
        "unsound": list(unsound),
        "overstrict": list(overstrict),
        "undecided": list(undecided),
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Daemon-side shard tracking
# ----------------------------------------------------------------------
class ShardedJob:
    """One in-flight sharded job: which shards delivered payloads,
    which exhausted their attempts, and the merge once all are
    terminal.  The authoritative copy of delivered payloads is the
    ledger (``record_shard``); this object is rebuilt from it after a
    daemon restart."""

    def __init__(self, job_id: str, kind: str, params: Dict, count: int):
        if kind not in SHARDABLE_KINDS:
            raise ServiceError(f"job kind {kind!r} is not shardable")
        self.job_id = job_id
        self.kind = kind
        self.params = params
        self.count = count
        self.payloads: Dict[int, Dict] = {}
        self.lost: Set[int] = set()
        self.attempts: Dict[int, int] = {i: 0 for i in range(count)}

    def shard_params(self, index: int) -> Dict:
        return shard_params(self.params, index, self.count)

    def pending(self) -> List[int]:
        return [index for index in range(self.count)
                if index not in self.payloads and index not in self.lost]

    def record(self, index: int, payload: Dict) -> None:
        self.payloads[index] = payload
        self.lost.discard(index)

    def record_lost(self, index: int) -> None:
        if index not in self.payloads:
            self.lost.add(index)

    def finished(self) -> bool:
        return len(self.payloads) + len(self.lost) >= self.count

    def merge(self) -> Tuple[str, Dict, bytes, str]:
        lost = {index: shard_member_names(self.kind, self.params, index,
                                          self.count)
                for index in sorted(self.lost)}
        if self.kind == "check":
            return merge_check_shards(self.params, self.payloads, lost)
        return merge_sweep_shards(self.params, self.payloads, lost)
