"""Client side of the serve protocol.

One request per connection, newline-delimited JSON — the transport is
deliberately boring so ``repro submit`` can also be replaced by five
lines of ``socket``/``json`` in a shell harness.

The one interesting method is :meth:`wait`: it polls a job to a
terminal state and **tolerates the daemon being down** (connection
refused / socket missing) for up to ``down_grace`` seconds before
giving up.  That is what makes "``kill -9`` the daemon, restart it,
clients never notice" an actual test rather than a slogan.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, List, Optional

from ..errors import ServiceError

#: errors that mean "daemon not reachable right now" (retryable)
_DOWN_ERRORS = (ConnectionRefusedError, ConnectionResetError,
                FileNotFoundError, BrokenPipeError)


class ServiceClient:
    """Talk to a ``repro serve`` daemon over its Unix socket."""

    def __init__(self, socket_path: str, timeout: float = 30.0):
        self.socket_path = socket_path
        self.timeout = timeout

    # ------------------------------------------------------------------
    def request(self, payload: Dict) -> Dict:
        """One round-trip.  Raises :class:`ServiceError` on transport
        failure or a ``{"ok": false}`` reply (with the daemon's error
        text)."""
        response = self.raw_request(payload)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "request failed"))
        return response

    def raw_request(self, payload: Dict) -> Dict:
        """One round-trip without the ``ok`` check (callers that want
        to branch on refusals — e.g. backpressure — use this)."""
        try:
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(self.timeout)
            conn.connect(self.socket_path)
            conn.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            chunks = []
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
            conn.close()
        except _DOWN_ERRORS as exc:
            raise ServiceError(
                f"daemon not reachable on {self.socket_path}: {exc}")
        except socket.timeout:
            raise ServiceError(
                f"daemon on {self.socket_path} timed out after "
                f"{self.timeout:.0f}s")
        except OSError as exc:
            raise ServiceError(f"transport error talking to "
                               f"{self.socket_path}: {exc}")
        raw = b"".join(chunks)
        if not raw.strip():
            raise ServiceError("daemon closed the connection without "
                               "a response")
        try:
            response = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(f"malformed daemon response: {exc}")
        if not isinstance(response, dict):
            raise ServiceError("malformed daemon response: not an object")
        return response

    # ------------------------------------------------------------------
    # Convenience ops
    # ------------------------------------------------------------------
    def ping(self) -> Dict:
        return self.request({"op": "ping"})

    def submit(self, kind: str, params: Optional[Dict] = None) -> str:
        """Submit one job; returns its id.  A backpressure refusal
        (``queue-full`` / ``draining``) raises ServiceError with that
        text — callers may retry."""
        response = self.request({"op": "submit", "kind": kind,
                                 "params": params or {}})
        return response["job"]

    def status(self, job: Optional[str] = None) -> Dict:
        payload = {"op": "status"}
        if job is not None:
            payload["job"] = job
        return self.request(payload)

    def result(self, job: str) -> Dict:
        return self.request({"op": "result", "job": job})

    def shutdown(self) -> Dict:
        return self.request({"op": "shutdown"})

    def kill_worker(self) -> Dict:
        return self.request({"op": "kill-worker"})

    # ------------------------------------------------------------------
    def wait(self, job: str, timeout: float = 600.0,
             poll_interval: float = 0.1,
             down_grace: float = 60.0) -> Dict:
        """Poll ``job`` until it reaches a terminal state.

        Daemon downtime (restart window after a crash) is tolerated for
        ``down_grace`` contiguous seconds — the restarted daemon replays
        its ledger and the job id remains valid.
        """
        # Monotonic deadlines: an NTP step or DST change must neither
        # expire a wait early nor extend it arbitrarily.
        deadline = time.monotonic() + timeout
        down_since: Optional[float] = None
        while True:
            try:
                response = self.result(job)
                down_since = None
            except ServiceError as exc:
                if "not reachable" not in str(exc):
                    raise
                now = time.monotonic()
                down_since = down_since or now
                if now - down_since > down_grace:
                    raise ServiceError(
                        f"daemon stayed down longer than "
                        f"{down_grace:.0f}s while waiting for {job}")
                response = None
            if response is not None and not response.get("pending"):
                return response
            if time.monotonic() > deadline:
                raise ServiceError(f"timed out after {timeout:.0f}s "
                                   f"waiting for {job}")
            time.sleep(poll_interval)

    def wait_all(self, jobs: List[str], timeout: float = 600.0) -> Dict:
        """Wait for several jobs; returns ``{job_id: result}``.

        ``timeout`` bounds the *whole batch*: each job's wait gets the
        time actually remaining (no per-job floor — an old 1 s minimum
        overshot the caller's budget by up to a second per pending
        job).  A batch whose budget is already spent times out rather
        than silently granting extra time.
        """
        deadline = time.monotonic() + timeout
        results = {}
        for job in jobs:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(f"timed out after {timeout:.0f}s "
                                   f"waiting for {job}")
            results[job] = self.wait(job, timeout=remaining)
        return results
