"""The ``repro serve`` verification daemon.

One single-threaded :mod:`selectors` event loop owns everything the
fleet does not: the Unix-domain listening socket, the newline-delimited
JSON protocol, the FIFO job queue with admission control, the
crash-safe :class:`~repro.service.ledger.JobLedger`, and job artifacts
on disk.  Workers never touch the ledger or the socket; the daemon
never runs a solver.  That split keeps every durability decision in
one process with one writer.

Protocol (one request per connection, ``\\n``-terminated JSON)::

    {"op": "submit", "kind": "check", "params": {...}}
        -> {"ok": true, "job": "job-000001", "state": "queued"}
    {"op": "status"}            -> daemon/queue/fleet/store overview
    {"op": "status", "job": j}  -> one job's state
    {"op": "result", "job": j}  -> terminal summary + artifact path
    {"op": "ping"}              -> {"ok": true, "pid": ...}
    {"op": "kill-worker"}       -> fault injection (tests/serve-smoke)
    {"op": "shutdown"}          -> graceful drain, then exit

Failure contract:

* an accepted submission is committed to the ledger *before* the
  ``ok`` response is sent — ``kill -9`` after the reply can never lose
  the job;
* a full queue refuses with ``queue-full`` instead of buffering
  unboundedly (backpressure is the client's problem to retry);
* a crashed/hung worker's job is re-dispatched up to ``max_attempts``
  times, then recorded ``failed``; a deadline expiry is recorded
  ``unknown`` immediately (deterministic jobs don't get faster);
* SIGTERM drains: running jobs finish, queued jobs stay in the ledger
  and are re-enqueued by the next ``repro serve`` on the same state
  directory, as is everything in flight after a ``kill -9``.
"""

from __future__ import annotations

import fcntl
import hashlib
import json
import os
import selectors
import signal
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ServiceError
from ..resilience import BackoffSchedule
from .chaos import ChaosPlan
from .fleet import WorkerFleet
from .jobs import validate_params
from .ledger import JobLedger
from .shards import (SHARDABLE_KINDS, ShardedJob, normalize_shards, shard_id,
                     split_shard_id)
from .store import ArtifactStore

#: queue/running states a job passes through before a terminal one
ACTIVE_STATES = ("queued", "running")

_MAX_REQUEST_BYTES = 8 * 1024 * 1024  # model texts are small; 8 MiB is lots

#: a queued reply not drained within this window means the client is
#: wedged; the connection is dropped (never blocks the event loop)
_SEND_TIMEOUT_SECONDS = 10.0


def default_socket_path(state_dir: str) -> str:
    return os.path.join(state_dir, "serve.sock")


@dataclass
class ServeConfig:
    """Daemon tuning; everything has a safe default."""

    state_dir: str
    socket_path: Optional[str] = None
    workers: int = 1
    max_queue: int = 64
    max_attempts: int = 3
    heartbeat_interval: float = 0.25
    hang_timeout: float = 60.0
    job_deadline: Optional[float] = None
    recycle_after: int = 0
    store_cap_bytes: Optional[int] = None
    backoff: BackoffSchedule = field(default_factory=BackoffSchedule)
    #: artifact-store root override — lets two daemons (separate state
    #: dirs, separate ledgers) share one store, which the store's
    #: flock discipline makes safe
    store_root: Optional[str] = None
    #: seeded fault-injection plan (``--inject-chaos``); None in
    #: production
    chaos: Optional[ChaosPlan] = None

    def resolved_socket(self) -> str:
        return self.socket_path or default_socket_path(self.state_dir)


@dataclass
class _ClientConn:
    """Per-connection buffers.  Replies are queued in ``txbuf`` and
    written on ``EVENT_WRITE`` readiness — the single-threaded event
    loop never blocks on a slow or wedged client."""

    rxbuf: bytearray = field(default_factory=bytearray)
    txbuf: bytearray = field(default_factory=bytearray)
    send_deadline: float = 0.0


@dataclass
class _JobRecord:
    """In-memory view of one job (authoritative copy is the ledger)."""

    job_id: str
    kind: str
    params: Dict
    seq: int
    state: str = "queued"
    attempts: int = 0
    result: Optional[Dict] = None
    artifact: Optional[str] = None
    sha256: Optional[str] = None


class JobQueue:
    """Bounded FIFO with admission control.

    ``offer`` refuses past ``max_depth`` (backpressure); ``requeue``
    puts a crash-retried job at the *front* and always succeeds —
    retries were admitted once and must not be lost to a full queue.
    """

    def __init__(self, max_depth: int = 64):
        self.max_depth = max_depth
        self._items: List[str] = []

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, job_id: str) -> bool:
        if len(self._items) >= self.max_depth:
            return False
        self._items.append(job_id)
        return True

    def requeue(self, job_id: str) -> None:
        self._items.insert(0, job_id)

    def take(self) -> Optional[str]:
        return self._items.pop(0) if self._items else None

    def snapshot(self) -> List[str]:
        return list(self._items)


class Daemon:
    """The serve event loop.  Construct, then :meth:`run`."""

    def __init__(self, config: ServeConfig, echo=print):
        self.config = config
        self.echo = echo
        os.makedirs(config.state_dir, exist_ok=True)
        self.store_root = config.store_root or \
            os.path.join(config.state_dir, "store")
        self.jobs_dir = os.path.join(config.state_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.ledger = JobLedger(os.path.join(config.state_dir,
                                             "jobs.jsonl"))
        self.queue = JobQueue(config.max_queue)
        self._chaos = config.chaos
        self._chaos_path = os.path.join(config.state_dir, "chaos.jsonl")
        self.fleet = WorkerFleet(
            self.store_root, workers=config.workers,
            heartbeat_interval=config.heartbeat_interval,
            hang_timeout=config.hang_timeout,
            job_deadline=config.job_deadline,
            recycle_after=config.recycle_after,
            backoff=config.backoff,
            extra_child_closers=self._forked_socket_closers,
            store_byte_budget=(config.chaos.store_budget
                               if config.chaos else None))
        self._jobs: Dict[str, _JobRecord] = {}
        #: in-flight sharded jobs by parent id (rebuilt from the
        #: ledger's shard records when a restart re-expands the job)
        self._sharded: Dict[str, ShardedJob] = {}
        #: FIFO of (parent_id, shard_index) awaiting an idle worker
        self._shard_queue: List[Tuple[str, int]] = []
        #: monotone dispatch-site counter (the chaos plan's time axis)
        self._dispatch_sites = 0
        #: completions recorded (shard + whole-job) — daemon-kill axis
        self._completions = 0
        self._seq = self.ledger.next_seq()
        self._draining = False
        self._shutdown = False
        self._selector = selectors.DefaultSelector()
        self._listener: Optional[socket.socket] = None
        self._lock_file = None  # held (flock) for the daemon's lifetime
        self._started_at = time.time()
        self._resume_ledger()

    # ------------------------------------------------------------------
    # Startup / resume
    # ------------------------------------------------------------------
    def _resume_ledger(self) -> None:
        """Replay the ledger: terminal jobs become queryable history,
        submitted-but-unfinished jobs go back on the queue in
        submission order."""
        if self.ledger.quarantined_records:
            self.echo(f"[serve] warning: {self.ledger.quarantined_records} "
                      f"corrupt ledger record(s) quarantined; affected "
                      f"jobs will re-run")
        resumed = 0
        for _seq, job_id, entry in self.ledger.jobs():
            record = _JobRecord(job_id=job_id, kind=entry["kind"],
                                params=entry["params"], seq=entry["seq"])
            done = self.ledger.completion(job_id)
            if done is not None:
                record.state = done["state"]
                record.result = done["result"]
                record.artifact = done.get("artifact")
                record.sha256 = done.get("sha256")
            else:
                record.state = "queued"
                self.queue.requeue(job_id)  # front; reversed below
                resumed += 1
            self._jobs[job_id] = record
        # requeue() prepends, so flip back to submission order.
        self.queue._items.reverse()
        if resumed:
            self.echo(f"[serve] resumed {resumed} in-flight job(s) "
                      f"from the ledger")

    def _forked_socket_closers(self) -> List[socket.socket]:
        """Every daemon-side handle a forked worker must close: the
        listener (else a killed daemon's orphans keep the socket path
        accepting doomed connections), any client connection open at
        fork time, and the state-dir lock file (else those orphans keep
        the flock held and a restarted daemon cannot acquire it)."""
        closers = [key.fileobj for key in self._selector.get_map().values()]
        if self._lock_file is not None:
            closers.append(self._lock_file)
        return closers

    def _acquire_lock(self) -> None:
        """Take the state directory's exclusive daemon lock.

        The flock is the single-writer guarantee: whatever the socket
        probe concludes, two daemons can never share one state dir,
        ledger, and job store.  Held until :meth:`_teardown`; the file
        itself is left behind (unlinking would race a successor opening
        the same path)."""
        lock_path = os.path.join(self.config.state_dir, "serve.lock")
        # "a", not "w": a losing contender must not truncate the
        # holder's pid note before the flock decides.
        lock_file = open(lock_path, "a", encoding="utf-8")
        try:
            fcntl.flock(lock_file, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            lock_file.close()
            raise ServiceError(f"another daemon already owns "
                               f"{self.config.state_dir} "
                               f"(lock held on {lock_path})")
        lock_file.truncate(0)
        lock_file.write(f"{os.getpid()}\n")
        lock_file.flush()
        self._lock_file = lock_file

    def _release_lock(self) -> None:
        if self._lock_file is not None:
            try:
                self._lock_file.close()  # closing releases the flock
            except OSError:
                pass
            self._lock_file = None

    def _bind(self) -> None:
        self._acquire_lock()
        path = self.config.resolved_socket()
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(path)
            except (ConnectionRefusedError, FileNotFoundError):
                os.unlink(path)  # stale socket from a killed daemon
            except OSError as exc:
                # Anything else (backlog pressure, EPERM, ...) may be a
                # live daemon: never unlink a socket we can't prove dead.
                self._release_lock()
                raise ServiceError(f"cannot probe existing socket "
                                   f"{path}: {exc}")
            else:
                self._release_lock()
                raise ServiceError(f"another daemon is already serving "
                                   f"on {path}")
            finally:
                probe.close()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(16)
        listener.setblocking(False)
        self._listener = listener
        self._selector.register(listener, selectors.EVENT_READ,
                                ("accept", None))

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        self._bind()
        self.fleet.start()
        signal.signal(signal.SIGTERM, self._on_sigterm)
        signal.signal(signal.SIGINT, self._on_sigterm)
        self.echo(f"[serve] pid {os.getpid()} listening on "
                  f"{self.config.resolved_socket()} "
                  f"({self.config.workers} worker(s))")
        try:
            while not self._shutdown:
                for key, mask in self._selector.select(timeout=0.05):
                    what, state = key.data
                    if what == "accept":
                        self._accept()
                    elif mask & selectors.EVENT_WRITE:
                        self._flush_client(key.fileobj, state)
                    else:
                        self._service_client(key.fileobj, state)
                self._tick()
        finally:
            self._teardown()
        return 0

    def _on_sigterm(self, _signum, _frame) -> None:
        # Idempotent: a second signal forces exit.
        if self._draining:
            self._shutdown = True
        self._draining = True

    def _tick(self) -> None:
        """One scheduling beat: fold fleet events, dispatch, drain."""
        self._reap_stalled_clients()
        for event in self.fleet.poll():
            if event[0] == "done":
                _, dispatch_id, state, summary, artifact, name = event
                address = split_shard_id(dispatch_id)
                if address is not None and address[0] in self._sharded:
                    self._finish_shard(address[0], address[1], state,
                                       summary, artifact)
                else:
                    self._finish_job(dispatch_id, state, summary,
                                     artifact, name)
            elif event[0] == "crashed":
                _, dispatch_id, kind, params, reason = event
                address = split_shard_id(dispatch_id)
                if address is not None and address[0] in self._sharded:
                    self._retry_shard(address[0], address[1], reason)
                else:
                    self._retry_or_fail(dispatch_id, reason)
        # Shards first, and regardless of draining: a graceful drain
        # finishes running jobs, and a half-merged sharded job is a
        # running job.
        while self._shard_queue:
            parent_id, index = self._shard_queue[0]
            sharded = self._sharded.get(parent_id)
            if sharded is None:
                self._shard_queue.pop(0)
                continue
            fault = self._chaos.fault_for(self._dispatch_sites, index) \
                if self._chaos else None
            if not self.fleet.dispatch(shard_id(parent_id, index),
                                       sharded.kind,
                                       sharded.shard_params(index),
                                       fault=fault):
                break
            self._shard_queue.pop(0)
            sharded.attempts[index] += 1
            self._note_dispatch(shard_id(parent_id, index), fault)
        while self.queue and not self._draining:
            job_id = self.queue.snapshot()[0]
            record = self._jobs.get(job_id)
            if record is None:
                self.queue.take()
                continue
            shards = normalize_shards(record.params) \
                if record.kind in SHARDABLE_KINDS else 1
            if shards > 1:
                self.queue.take()
                self._expand_shards(record, shards)
                continue
            fault = self._chaos.fault_for(self._dispatch_sites) \
                if self._chaos else None
            if not self.fleet.dispatch(job_id, record.kind, record.params,
                                       fault=fault):
                break
            self.queue.take()
            record.state = "running"
            record.attempts += 1
            self._note_dispatch(job_id, fault)
        if self._draining and not self.fleet.busy_jobs() \
                and not self._shard_queue:
            self._shutdown = True

    # ------------------------------------------------------------------
    # Sharded jobs
    # ------------------------------------------------------------------
    def _expand_shards(self, record: _JobRecord, count: int) -> None:
        """Turn one queued sharded job into ``count`` fleet dispatches.
        Shard results already in the ledger (a restart mid-job) are
        credited immediately — only the missing stripes re-run."""
        sharded = ShardedJob(record.job_id, record.kind, record.params,
                             count)
        replayed = 0
        for index, payload in self.ledger.shard_payloads(
                record.job_id).items():
            if 0 <= index < count:
                sharded.record(index, payload)
                replayed += 1
        self._sharded[record.job_id] = sharded
        record.state = "running"
        record.attempts += 1
        if replayed:
            self.echo(f"[serve] {record.job_id}: replayed {replayed} "
                      f"shard result(s) from the ledger")
        pending = sharded.pending()
        if not pending:
            self._merge_shards(record.job_id)
            return
        self._shard_queue.extend((record.job_id, index)
                                 for index in pending)

    def _finish_shard(self, parent_id: str, index: int, state: str,
                      summary: Dict, artifact: Optional[bytes]) -> None:
        sharded = self._sharded.get(parent_id)
        if sharded is None or index in sharded.payloads:
            return
        if state == "failed":
            # A deterministic in-job exception recurs on every retry:
            # fail the whole job, like an unsharded run would.
            self._fail_sharded(parent_id,
                               f"shard {index} failed: "
                               f"{summary.get('error', 'job error')}")
            return
        if artifact is None:
            # Deadline expiry: first-class unknown, no retry (policy
            # mirrors unsharded jobs) — the stripe degrades to UNKNOWN.
            sharded.record_lost(index)
            self.echo(f"[serve] {shard_id(parent_id, index)}: "
                      f"{summary.get('error', 'no result')}; stripe "
                      f"degrades to UNKNOWN")
            if sharded.finished():
                self._merge_shards(parent_id)
            return
        try:
            payload = json.loads(artifact.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("shard payload must be an object")
        except (ValueError, UnicodeDecodeError):
            self._retry_shard(parent_id, index,
                              "undecodable shard payload")
            return
        sharded.record(index, payload)
        # Durability before merge/reply: a daemon killed right here
        # replays this shard from the ledger instead of re-running it.
        self.ledger.record_shard(parent_id, index, payload)
        self._note_completion(shard_id(parent_id, index))
        if sharded.finished():
            self._merge_shards(parent_id)

    def _retry_shard(self, parent_id: str, index: int,
                     reason: str) -> None:
        sharded = self._sharded.get(parent_id)
        if sharded is None or index in sharded.payloads:
            return
        if sharded.attempts[index] < self.config.max_attempts:
            self.echo(f"[serve] {shard_id(parent_id, index)} attempt "
                      f"{sharded.attempts[index]} lost ({reason}); "
                      f"re-queueing")
            self._shard_queue.insert(0, (parent_id, index))
            return
        sharded.record_lost(index)
        self.echo(f"[serve] {shard_id(parent_id, index)} lost after "
                  f"{sharded.attempts[index]} attempt(s) ({reason}); "
                  f"stripe degrades to UNKNOWN")
        if sharded.finished():
            self._merge_shards(parent_id)

    def _merge_shards(self, parent_id: str) -> None:
        sharded = self._sharded.pop(parent_id, None)
        if sharded is None:
            return
        try:
            state, summary, artifact, name = sharded.merge()
        except Exception as exc:  # noqa: BLE001 - merge isolation
            summary = {"error": f"shard merge failed: "
                       f"{type(exc).__name__}: {exc}"}
            record = self._jobs.get(parent_id)
            self.ledger.record_done(parent_id, "failed", summary)
            if record is not None:
                record.state = "failed"
                record.result = summary
            self.echo(f"[serve] {parent_id} failed: {summary['error']}")
            return
        if summary.get("partial"):
            self.echo(f"[serve] {parent_id}: partial report — shard(s) "
                      f"{summary['unknown_shards']} degraded to UNKNOWN")
        self._finish_job(parent_id, state, summary, artifact, name)

    def _fail_sharded(self, parent_id: str, reason: str) -> None:
        self._sharded.pop(parent_id, None)
        self._shard_queue = [(parent, index)
                             for parent, index in self._shard_queue
                             if parent != parent_id]
        record = self._jobs.get(parent_id)
        summary = {"error": reason}
        self.ledger.record_done(parent_id, "failed", summary)
        if record is not None:
            record.state = "failed"
            record.result = summary
        self.echo(f"[serve] {parent_id} failed permanently: {reason}")

    # ------------------------------------------------------------------
    # Chaos bookkeeping
    # ------------------------------------------------------------------
    def _chaos_log(self, event: Dict) -> None:
        """Append one event to the replayable chaos journal (CI uploads
        it next to the partial reports)."""
        if self._chaos is None:
            return
        line = json.dumps({"t": round(time.time(), 3), **event},
                          sort_keys=True)
        try:
            with open(self._chaos_path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:
            pass  # the journal is diagnostics, never load-bearing

    def _note_dispatch(self, dispatch_id: str, fault) -> None:
        site = self._dispatch_sites
        self._dispatch_sites += 1
        if fault is not None:
            self.echo(f"[serve] chaos: {fault[0]} injected into "
                      f"{dispatch_id} (site {site})")
            self._chaos_log({"event": "fault", "site": site,
                             "dispatch": dispatch_id,
                             "fault": list(fault)})

    def _note_completion(self, dispatch_id: str) -> None:
        """Count one recorded completion and honor a scheduled daemon
        ``kill -9`` — after the ledger append, before any merge or
        client reply, which is exactly the window the ledger-replay
        tests exercise."""
        ordinal = self._completions
        self._completions += 1
        if self._chaos is not None and \
                self._chaos.kill_daemon_after(ordinal):
            self._chaos_log({"event": "daemon-kill", "ordinal": ordinal,
                             "after": dispatch_id})
            self.echo(f"[serve] chaos: daemon kill -9 after completion "
                      f"{ordinal} ({dispatch_id})")
            os._exit(137)

    def _finish_job(self, job_id: str, state: str, summary: Dict,
                    artifact: Optional[bytes],
                    name: Optional[str]) -> None:
        record = self._jobs.get(job_id)
        if record is None:
            return
        artifact_path = sha = None
        if artifact is not None and name is not None:
            artifact_path = self._write_artifact(job_id, name, artifact)
            sha = hashlib.sha256(artifact).hexdigest()
        self.ledger.record_done(job_id, state, summary,
                                artifact=artifact_path, sha256=sha)
        record.state = state
        record.result = summary
        record.artifact = artifact_path
        record.sha256 = sha
        self.echo(f"[serve] {job_id} {record.kind}: {state}")
        self._note_completion(job_id)

    def _retry_or_fail(self, job_id: str, reason: str) -> None:
        record = self._jobs.get(job_id)
        if record is None:
            return
        if record.attempts < self.config.max_attempts:
            self.echo(f"[serve] {job_id} attempt {record.attempts} "
                      f"lost ({reason}); re-queueing")
            record.state = "queued"
            self.queue.requeue(job_id)
            return
        summary = {"error": f"{reason} ({record.attempts} attempt(s))"}
        self.ledger.record_done(job_id, "failed", summary)
        record.state = "failed"
        record.result = summary
        self.echo(f"[serve] {job_id} failed permanently: {reason}")

    def _write_artifact(self, job_id: str, name: str,
                        payload: bytes) -> str:
        """Atomic artifact write (same discipline as the store)."""
        job_dir = os.path.join(self.jobs_dir, job_id)
        os.makedirs(job_dir, exist_ok=True)
        final = os.path.join(job_dir, os.path.basename(name))
        fd, tmp = tempfile.mkstemp(dir=job_dir, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return final

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def _accept(self) -> None:
        try:
            conn, _addr = self._listener.accept()
        except OSError:
            return
        conn.setblocking(False)
        self._selector.register(conn, selectors.EVENT_READ,
                                ("client", _ClientConn()))

    def _service_client(self, conn: socket.socket,
                        state: _ClientConn) -> None:
        try:
            chunk = conn.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_client(conn)
            return
        if not chunk:
            self._drop_client(conn)
            return
        state.rxbuf.extend(chunk)
        if len(state.rxbuf) > _MAX_REQUEST_BYTES:
            self._respond(conn, state,
                          {"ok": False, "error": "request too large"})
            return
        if b"\n" not in state.rxbuf:
            return
        line = bytes(state.rxbuf[:state.rxbuf.index(b"\n")])
        try:
            request = json.loads(line.decode("utf-8"))
            if not isinstance(request, dict):
                raise ValueError("request must be an object")
        except (ValueError, UnicodeDecodeError) as exc:
            self._respond(conn, state, {"ok": False,
                                        "error": f"bad request: {exc}"})
            return
        self._respond(conn, state, self._handle(request))

    def _drop_client(self, conn: socket.socket) -> None:
        try:
            self._selector.unregister(conn)
        except KeyError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _respond(self, conn: socket.socket, state: _ClientConn,
                 response: Dict) -> None:
        """Queue the reply and switch the connection to
        write-readiness; the event loop drains it without blocking
        (a wedged client costs nothing but its own connection)."""
        state.txbuf.extend((json.dumps(response) + "\n").encode("utf-8"))
        state.send_deadline = time.time() + _SEND_TIMEOUT_SECONDS
        try:
            self._selector.modify(conn, selectors.EVENT_WRITE,
                                  ("client", state))
        except (KeyError, ValueError, OSError):
            self._drop_client(conn)
            return
        self._flush_client(conn, state)

    def _flush_client(self, conn: socket.socket,
                      state: _ClientConn) -> None:
        try:
            while state.txbuf:
                sent = conn.send(state.txbuf)
                del state.txbuf[:sent]
        except (BlockingIOError, InterruptedError):
            return  # socket full: wait for the next EVENT_WRITE
        except OSError:
            pass
        self._drop_client(conn)  # reply fully sent (or client dead)

    def _reap_stalled_clients(self) -> None:
        """Drop connections whose queued reply has not drained within
        the send window (the client stopped reading)."""
        now = time.time()
        stalled = [
            key.fileobj
            for key in list(self._selector.get_map().values())
            if key.data[0] == "client" and key.data[1].txbuf
            and now > key.data[1].send_deadline
        ]
        for conn in stalled:
            self._drop_client(conn)

    # ------------------------------------------------------------------
    def _handle(self, request: Dict) -> Dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "uptime_seconds": round(time.time() - self._started_at,
                                            3)}
        if op == "submit":
            return self._handle_submit(request)
        if op == "status":
            return self._handle_status(request)
        if op == "result":
            return self._handle_result(request)
        if op == "kill-worker":
            pid = self.fleet.kill_one_worker()
            return {"ok": pid is not None, "pid": pid}
        if op == "shutdown":
            self._draining = True
            return {"ok": True, "draining": True,
                    "running": len(self.fleet.busy_jobs())}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _handle_submit(self, request: Dict) -> Dict:
        if self._draining:
            return {"ok": False, "error": "draining",
                    "retryable": True}
        kind = request.get("kind")
        try:
            params = validate_params(kind, request.get("params"))
        except ServiceError as exc:
            return {"ok": False, "error": str(exc)}
        if len(self.queue) >= self.queue.max_depth:
            return {"ok": False, "error": "queue-full",
                    "retryable": True, "depth": len(self.queue)}
        job_id = f"job-{self._seq:06d}"
        seq = self._seq
        self._seq += 1
        # Durability before acknowledgement: the ledger commit must
        # land before the client hears "ok".
        self.ledger.record_submit(job_id, kind, params, seq)
        self._jobs[job_id] = _JobRecord(job_id=job_id, kind=kind,
                                        params=params, seq=seq)
        self.queue.offer(job_id)
        self.echo(f"[serve] {job_id} {kind}: queued")
        return {"ok": True, "job": job_id, "state": "queued"}

    def _job_view(self, record: _JobRecord) -> Dict:
        view = {"job": record.job_id, "kind": record.kind,
                "state": record.state, "attempts": record.attempts}
        sharded = self._sharded.get(record.job_id)
        if sharded is not None:
            view["shards"] = {"count": sharded.count,
                             "delivered": len(sharded.payloads),
                             "lost": sorted(sharded.lost)}
        if record.state not in ACTIVE_STATES:
            view["result"] = record.result
            if record.artifact:
                view["artifact"] = record.artifact
                view["sha256"] = record.sha256
        return view

    def _handle_status(self, request: Dict) -> Dict:
        job_id = request.get("job")
        if job_id is not None:
            record = self._jobs.get(job_id)
            if record is None:
                return {"ok": False, "error": f"unknown job {job_id!r}"}
            return {"ok": True, **self._job_view(record)}
        with ArtifactStore(self.store_root) as store:
            store_stats = store.stats()
        states: Dict[str, int] = {}
        for record in self._jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        return {
            "ok": True,
            "pid": os.getpid(),
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "draining": self._draining,
            "queue": {"depth": len(self.queue),
                      "max_depth": self.queue.max_depth,
                      "jobs": self.queue.snapshot()},
            "jobs": states,
            "fleet": self.fleet.status(),
            "ledger": {
                "path": self.ledger.path,
                "quarantined_records": self.ledger.quarantined_records,
            },
            "store": store_stats,
            "shards": {
                "active": len(self._sharded),
                "queued": len(self._shard_queue),
                "dispatch_sites": self._dispatch_sites,
                "completions": self._completions,
            },
            "chaos": (self._chaos.describe()
                      if self._chaos is not None else None),
        }

    def _handle_result(self, request: Dict) -> Dict:
        job_id = request.get("job")
        record = self._jobs.get(job_id)
        if record is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        if record.state in ACTIVE_STATES:
            return {"ok": True, "job": job_id, "state": record.state,
                    "pending": True}
        return {"ok": True, **self._job_view(record)}

    # ------------------------------------------------------------------
    def _teardown(self) -> None:
        self.fleet.stop()
        if self._listener is not None:
            try:
                self._selector.unregister(self._listener)
            except KeyError:
                pass
            self._listener.close()
        for key in list(self._selector.get_map().values()):
            try:
                key.fileobj.close()
            except OSError:
                pass
        self._selector.close()
        path = self.config.resolved_socket()
        if os.path.exists(path):
            try:
                os.unlink(path)
            except OSError:
                pass
        self.ledger.close()
        self._release_lock()
        self.echo(f"[serve] stopped; {len(self.queue)} job(s) left "
                  f"queued in the ledger")
