"""The daemon's crash-safe job ledger.

Built on the shared checksummed JSONL journal
(:class:`repro.resilience.journal.Journal`), so it inherits the whole
resilience contract for free: fsynced commits, per-record checksums, a
torn tail (daemon ``kill -9`` mid-append) quarantined and counted on
replay.

Two records per job, keyed so the later one supersedes nothing:

* ``<job>:submit`` — the submission (kind, validated params, client
  label).  Written and committed *before* the submit response is sent,
  so an accepted job can never be lost.
* ``<job>:done`` — the terminal state (``done`` / ``failed`` /
  ``unknown``), the result summary, and the artifact path + sha256.

A restarted daemon replays the ledger and re-enqueues every job that
has a ``submit`` record but no ``done`` record — in submission order.
Because job execution is deterministic (the repo-wide invariant), a
re-run job reproduces byte-identical artifacts; clients polling across
the restart never observe anything but a delay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..resilience.journal import Journal

#: terminal job states recorded in ``:done`` entries
TERMINAL_STATES = ("done", "failed", "unknown")


class JobLedger(Journal):
    """Append-only journal of job submissions and completions."""

    format = "repro-serve-job-ledger"

    def __init__(self, path: str):
        # A ledger is durable by definition: always replay what exists
        # (the base class would truncate with resume=False).
        super().__init__(path, resume=True)

    def _valid_entry(self, entry) -> bool:
        if not isinstance(entry, dict):
            return False
        event = entry.get("event")
        if event == "submit":
            return (isinstance(entry.get("job"), str)
                    and isinstance(entry.get("kind"), str)
                    and isinstance(entry.get("params"), dict)
                    and isinstance(entry.get("seq"), int))
        if event == "done":
            return (isinstance(entry.get("job"), str)
                    and entry.get("state") in TERMINAL_STATES
                    and isinstance(entry.get("result"), dict))
        if event == "shard":
            return (isinstance(entry.get("job"), str)
                    and isinstance(entry.get("index"), int)
                    and isinstance(entry.get("payload"), dict))
        return False

    # ------------------------------------------------------------------
    def record_submit(self, job_id: str, kind: str, params: Dict,
                      seq: int) -> None:
        self.record_entry(f"{job_id}:submit", {
            "event": "submit", "job": job_id, "kind": kind,
            "params": params, "seq": seq,
        })
        self.commit()

    def record_done(self, job_id: str, state: str, result: Dict,
                    artifact: Optional[str] = None,
                    sha256: Optional[str] = None) -> None:
        entry = {"event": "done", "job": job_id, "state": state,
                 "result": result}
        if artifact is not None:
            entry["artifact"] = artifact
            entry["sha256"] = sha256
        self.record_entry(f"{job_id}:done", entry)
        self.commit()

    def record_shard(self, job_id: str, index: int, payload: Dict) -> None:
        """One delivered shard result, committed *before* anything is
        merged or replied: a daemon killed between this append and the
        final ``:done`` record replays the shard instead of re-running
        it, so restart recovery converges on the identical merge."""
        self.record_entry(f"{job_id}:shard:{index}", {
            "event": "shard", "job": job_id, "index": index,
            "payload": payload,
        })
        self.commit()

    # ------------------------------------------------------------------
    def submission(self, job_id: str) -> Optional[Dict]:
        return self._entries.get(f"{job_id}:submit")

    def completion(self, job_id: str) -> Optional[Dict]:
        return self._entries.get(f"{job_id}:done")

    def shard_payloads(self, job_id: str) -> Dict[int, Dict]:
        """The shard results already delivered for one job (replayed
        after a restart to pre-fill the merge)."""
        prefix = f"{job_id}:shard:"
        return {entry["index"]: entry["payload"]
                for key, entry in self._entries.items()
                if key.startswith(prefix)}

    def jobs(self) -> List[Tuple[int, str, Dict]]:
        """All submitted jobs as ``(seq, job_id, submit_entry)``, in
        submission order."""
        found = []
        for key, entry in self._entries.items():
            if key.endswith(":submit"):
                found.append((entry["seq"], entry["job"], entry))
        found.sort()
        return found

    def pending_jobs(self) -> List[Tuple[str, Dict]]:
        """Jobs submitted but never completed — the restart re-enqueue
        list, in submission order."""
        return [(job_id, entry) for _seq, job_id, entry in self.jobs()
                if self.completion(job_id) is None]

    def next_seq(self) -> int:
        """The next submission sequence number (max replayed + 1)."""
        jobs = self.jobs()
        return (jobs[-1][0] + 1) if jobs else 1
