"""Store-backed implementations of the formal layer's caches.

``BENCH_synth.json`` recording ``blast_hits: 0`` across full-corpus
runs is the motivating bug of this package: the in-memory
:class:`~repro.formal.bitblast.BlastCache` and
:class:`~repro.formal.cache.VerdictCache` are highly effective *within*
a process and worthless *across* processes.  These subclasses keep the
exact same interfaces (the engine and scheduler cannot tell the
difference) and add an :class:`~repro.service.store.ArtifactStore`
layer underneath the in-memory tier:

* lookup: memory first, then the store (a store hit is counted as a
  cache hit — that is what makes a second synthesis submission report
  ``blast_hits > 0``), then recompute;
* store: written through to disk, so the *next* process starts warm.

Corrupt store entries are quarantined by the store itself and surface
here as plain misses — a bit flip can cost a recompute, never a wrong
verdict.  The same degradation applies on the write path: a store
write failure (a full disk, or the chaos harness's ENOSPC byte-budget
shim) is swallowed and counted in ``store_write_errors`` — the job
keeps its in-memory entry and completes; only cross-process reuse is
lost.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Sequence, Tuple

from ..formal.bitblast import BlastCache, BlastedDesign, bitblast
from ..formal.cache import VerdictCache, decode_verdict
from ..formal.engine import UNKNOWN, Verdict
from ..netlist import Netlist, cone_of_influence, netlist_fingerprint
from .store import ArtifactStore

#: store namespaces (one directory each under the store root)
VERDICT_NAMESPACE = "verdict"
BLAST_NAMESPACE = "blast"

_VERDICT_REQUIRED = ("status", "method", "bound", "time_seconds")


class PersistentVerdictCache(VerdictCache):
    """A :class:`VerdictCache` whose entries live in the artifact store,
    keyed by the existing canonical problem fingerprint.

    UNKNOWN verdicts are never cached — in either tier.  They are
    shaped by the submitting job's budget, which the fingerprint
    excludes, and this cache outlives any single budget: the store is
    shared across runs and clients, and the in-memory tier lives in a
    warm worker whose checker is re-budgeted per job
    (:meth:`repro.service.jobs.WorkerContext.checker`).  Caching one
    would let a tightly-budgeted submission pin every later submission
    of the same problem to UNKNOWN, breaking the determinism contract
    (same ``(kind, params)`` ⇒ same result regardless of history).
    """

    def __init__(self, store: ArtifactStore):
        super().__init__(path=None)
        self._store = store
        #: lookups served from disk rather than this session's memory
        self.store_hits = 0
        #: write-throughs refused by the store (full disk / byte budget)
        self.store_write_errors = 0

    def lookup(self, fingerprint: str) -> Optional[Verdict]:
        entry = self._entries.get(fingerprint)
        if entry is None:
            entry = self._store.get_json(VERDICT_NAMESPACE, fingerprint)
            if entry is None or \
                    not all(key in entry for key in _VERDICT_REQUIRED) or \
                    entry["status"] == UNKNOWN:
                # A stored UNKNOWN (written by a pre-fix daemon) is a
                # miss: recompute, and the decided verdict's
                # write-through heals the entry.
                self.misses += 1
                return None
            self._entries[fingerprint] = entry
            self.store_hits += 1
        self.hits += 1
        return decode_verdict(entry)

    def store(self, fingerprint: str, verdict: Verdict) -> None:
        if verdict.status == UNKNOWN:
            self._entries.pop(fingerprint, None)
            return
        super().store(fingerprint, verdict)
        try:
            self._store.put_json(VERDICT_NAMESPACE, fingerprint,
                                 self._entries[fingerprint])
        except OSError:
            # Disk full (or the chaos byte-budget shim): the verdict
            # stays in memory and the job completes; the next process
            # just recomputes instead of starting warm.
            self.store_write_errors += 1

    def save(self) -> None:
        """Entries are written through on :meth:`store`; nothing to do."""


def blast_store_key(netlist: Netlist, roots: Sequence[str],
                    frozen_inputs: Sequence[str], use_coi: bool) -> str:
    """Content key for one blasted problem shape — the on-disk analogue
    of :class:`BlastCache`'s in-memory tuple key."""
    canonical = json.dumps([
        netlist_fingerprint(netlist), sorted(roots),
        sorted(frozen_inputs), bool(use_coi),
    ], separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class PersistentBlastCache(BlastCache):
    """A :class:`BlastCache` with the artifact store as a second tier.

    A store hit counts toward :attr:`hits` (the engine folds that into
    its ``blast_hits`` statistic), and separately toward
    :attr:`store_hits` so cross-run reuse is observable on its own.
    """

    def __init__(self, store: ArtifactStore, capacity: int = 64):
        super().__init__(capacity)
        self._store = store
        self.store_hits = 0
        #: write-throughs refused by the store (full disk / byte budget)
        self.store_write_errors = 0

    def get(self, netlist: Netlist, roots: Sequence[str],
            frozen_inputs: Sequence[str],
            use_coi: bool) -> Tuple[Netlist, BlastedDesign]:
        key = (netlist_fingerprint(netlist), tuple(sorted(roots)),
               tuple(sorted(frozen_inputs)), use_coi)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        disk_key = blast_store_key(netlist, roots, frozen_inputs, use_coi)
        loaded = self._store.get_pickle(BLAST_NAMESPACE, disk_key)
        if isinstance(loaded, tuple) and len(loaded) == 2 \
                and isinstance(loaded[1], BlastedDesign):
            self.hits += 1
            self.store_hits += 1
            self._remember(key, loaded)
            return loaded
        self.misses += 1
        cone = cone_of_influence(netlist, roots) if use_coi else netlist
        frozen = [f for f in frozen_inputs if f in cone.inputs]
        blasted = bitblast(cone, frozen_inputs=frozen)
        entry = (cone, blasted)
        self._remember(key, entry)
        try:
            self._store.put_pickle(BLAST_NAMESPACE, disk_key, entry)
        except OSError:
            # Same degradation as the verdict cache: a refused write
            # costs cross-process reuse, never the blast itself.
            self.store_write_errors += 1
        return entry

    def _remember(self, key, entry) -> None:
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
