"""The daemon's warm worker fleet.

Each worker is a long-lived process holding a
:class:`~repro.service.jobs.WorkerContext` — elaborated designs,
retained solvers, store-backed caches — so consecutive jobs skip the
cold-start cost that dominates one-shot CLI runs.  The supervisor
(:class:`WorkerFleet`) keeps that warmth *safe*:

* **heartbeats** — a worker thread pings the supervisor every
  ``heartbeat_interval`` seconds; a busy worker silent for
  ``hang_timeout`` seconds is declared hung, killed (SIGKILL), and
  replaced.  The job it held is reported ``crashed`` so the daemon can
  re-dispatch it (execution is deterministic, so a retry converges on
  the same bytes);
* **crash detection** — a dead process or torn pipe is the same story
  without the wait;
* **deadlines** — a job running past ``job_deadline`` seconds is
  killed and reported as a first-class ``unknown`` (not retried: a
  deterministic job that hit its deadline once will hit it again);
* **recycling** — after ``recycle_after`` jobs a worker is retired at
  the next idle moment, bounding leak accumulation;
* **backoff** — respawns are delayed by the shared deterministic
  :class:`~repro.resilience.BackoffSchedule`, so a crash-looping
  worker (e.g. the store disk is gone) cannot hot-spin the daemon.

Transport is a raw ``socketpair`` with explicit length-prefixed pickle
frames rather than :func:`multiprocessing.Pipe`.  The distinction is
load-bearing: ``Connection.poll() → recv()`` blocks forever on a frame
torn by ``kill -9`` mid-send when any orphaned grandchild (solver pool
workers) still holds the write end open.  With our own framing the
supervisor's reads are non-blocking — a torn frame just sits in the
buffer until the hang detector reaps the worker.

The fleet never sleeps: :meth:`poll` is called from the daemon's event
loop and *schedules* respawns by timestamp instead of blocking.
"""

from __future__ import annotations

import os
import pickle
import signal
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import multiprocessing as mp

from ..resilience import BackoffSchedule
from .jobs import WorkerContext, execute_job

_HEADER = struct.Struct("!I")


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, message) -> None:
    """One length-prefixed pickle frame (blocking until written)."""
    payload = pickle.dumps(message)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket):
    """Blocking read of one frame (worker side).  Returns None on EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    body = _recv_exact(sock, _HEADER.unpack(header)[0])
    if body is None:
        return None
    return pickle.loads(body)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def parse_frames(buffer: bytearray, messages: Optional[List] = None) -> List:
    """Pop every complete frame off ``buffer`` (supervisor side);
    an incomplete tail is left in place for the next read.

    Pass ``messages`` to keep the frames parsed before a garbled one:
    each frame is appended as it is decoded, so when a decode raises
    the caller still holds the good prefix.
    """
    if messages is None:
        messages = []
    while len(buffer) >= _HEADER.size:
        length = _HEADER.unpack(bytes(buffer[:_HEADER.size]))[0]
        end = _HEADER.size + length
        if len(buffer) < end:
            break
        payload = bytes(buffer[_HEADER.size:end])
        del buffer[:end]
        messages.append(pickle.loads(payload))
    return messages


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(sock: socket.socket, inherited: List[socket.socket],
                 store_root: str, heartbeat_interval: float,
                 store_byte_budget: Optional[int] = None) -> None:
    """Worker entry point: execute jobs off the socket until told to
    stop.  The heartbeat runs on its own thread so a long solver call
    still pings the supervisor; sends share a lock because interleaved
    ``sendall`` would tear frames.

    ``inherited`` is every daemon-side socket the fork copied into this
    process — our own pipe's supervisor end, sibling workers' pipes,
    and the daemon's listener.  Closing them immediately is what makes
    ``kill -9`` observable: with a stale copy of our pipe's far end
    alive in here, a dead daemon would never read as EOF, and a stale
    listener copy would keep the socket path accepting connections no
    daemon will ever answer."""
    for stale in inherited:
        try:
            stale.close()
        except OSError:
            pass
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    ctx = WorkerContext(store_root, store_byte_budget=store_byte_budget)
    stop = threading.Event()
    stalled = threading.Event()  # chaos: heartbeats pause while set
    send_lock = threading.Lock()

    def _send(message) -> None:
        with send_lock:
            send_frame(sock, message)

    def _beat() -> None:
        while not stop.wait(heartbeat_interval):
            if stalled.is_set():
                continue
            try:
                _send(("hb", time.time()))
            except OSError:
                return

    beat = threading.Thread(target=_beat, daemon=True)
    beat.start()
    try:
        while True:
            try:
                message = recv_frame(sock)
            except (OSError, pickle.UnpicklingError):
                break
            if message is None or message[0] == "stop":
                break
            job_id, kind, params = message[1], message[2], message[3]
            fault = message[4] if len(message) > 4 else None
            if fault is not None:
                # Chaos directives ride inside the job frame so the
                # injected failure lands exactly at a frame boundary —
                # the job is dispatched (the supervisor holds it as
                # busy) but no result frame will arrive intact.
                if fault[0] == "kill":
                    # SIGKILL-equivalent: no cleanup, no result frame.
                    os._exit(137)
                if fault[0] == "torn":
                    # A length header promising more bytes than will
                    # ever come, then death: the supervisor must hold
                    # the torn tail and reap us, not block or crash.
                    with send_lock:
                        try:
                            sock.sendall(_HEADER.pack(1 << 20)
                                         + b"\x80\x04 torn frame")
                        except OSError:
                            pass
                    os._exit(137)
                if fault[0] == "stall":
                    # Heartbeats stop; the hang detector decides.  If
                    # the stall outlives hang_timeout we are reaped
                    # mid-sleep; otherwise the job proceeds normally.
                    stalled.set()
                    time.sleep(fault[1])
                    stalled.clear()
                elif fault[0] == "slow":
                    # Straggler: heartbeats keep flowing, the result
                    # is just late.  Shard merging must wait, not drop.
                    time.sleep(fault[1])
            try:
                summary, artifact, name = execute_job(kind, params, ctx)
            except Exception as exc:  # noqa: BLE001 - job isolation
                try:
                    _send(("done", job_id, "failed",
                           {"error": f"{type(exc).__name__}: {exc}"},
                           None, None))
                except OSError:
                    break
                continue
            # Budget exhaustion degrades inside the engines to
            # undecided verdicts; surface that as a first-class
            # ``unknown`` job rather than a hollow success.
            state = "unknown" if summary.get("undecided", 0) else "done"
            try:
                _send(("done", job_id, state, summary, artifact, name))
            except OSError:
                break
    finally:
        stop.set()
        ctx.close()
        try:
            sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
@dataclass
class FleetStats:
    """Lifetime counters for the fleet (reported by ``repro status``)."""

    spawned: int = 0
    jobs_completed: int = 0
    crashes: int = 0
    hangs: int = 0
    deadline_kills: int = 0
    recycles: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "spawned": self.spawned,
            "jobs_completed": self.jobs_completed,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "deadline_kills": self.deadline_kills,
            "recycles": self.recycles,
        }


@dataclass
class _WorkerSlot:
    """Supervisor-side record of one worker seat."""

    index: int
    process: Optional[mp.process.BaseProcess] = None
    sock: Optional[socket.socket] = None
    rxbuf: bytearray = None
    txbuf: bytearray = None
    tx_since: float = 0.0  # when txbuf last went empty -> non-empty
    busy_job: Optional[Tuple[str, str, Dict]] = None  # (id, kind, params)
    started_at: float = 0.0
    last_seen: float = 0.0
    jobs_done: int = 0
    respawn_at: float = 0.0
    respawn_attempt: int = 0
    retiring: bool = False

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


#: fleet events yielded by :meth:`WorkerFleet.poll` — ``("done", job_id,
#: state, summary, artifact_bytes, artifact_name)`` or ``("crashed",
#: job_id, kind, params, reason)``
FleetEvent = Tuple


class WorkerFleet:
    """Supervise ``workers`` warm job executors."""

    def __init__(self, store_root: str, workers: int = 1,
                 heartbeat_interval: float = 0.25,
                 hang_timeout: float = 60.0,
                 job_deadline: Optional[float] = None,
                 recycle_after: int = 0,
                 backoff: Optional[BackoffSchedule] = None,
                 extra_child_closers=None,
                 store_byte_budget: Optional[int] = None):
        #: callable returning extra sockets a forked worker must close
        #: (the daemon registers its listener + live client conns here)
        self.extra_child_closers = extra_child_closers
        self.store_root = store_root
        #: chaos ENOSPC shim: workers' stores refuse writes past this
        self.store_byte_budget = store_byte_budget
        self.heartbeat_interval = heartbeat_interval
        self.hang_timeout = hang_timeout
        self.job_deadline = job_deadline
        self.recycle_after = recycle_after
        self.backoff = backoff or BackoffSchedule()
        self._mp = mp.get_context("fork")
        self.stats = FleetStats()
        self._slots: List[_WorkerSlot] = [
            _WorkerSlot(index=i) for i in range(max(1, workers))]

    # ------------------------------------------------------------------
    def start(self) -> None:
        for slot in self._slots:
            self._spawn(slot)

    def _spawn(self, slot: _WorkerSlot) -> None:
        parent_sock, child_sock = socket.socketpair()
        inherited = [parent_sock]
        inherited.extend(s.sock for s in self._slots if s.sock is not None)
        if self.extra_child_closers is not None:
            inherited.extend(self.extra_child_closers())
        process = self._mp.Process(
            target=_worker_main,
            args=(child_sock, inherited, self.store_root,
                  self.heartbeat_interval, self.store_byte_budget),
            daemon=True)
        process.start()
        child_sock.close()
        parent_sock.setblocking(False)
        slot.process = process
        slot.sock = parent_sock
        slot.rxbuf = bytearray()
        slot.txbuf = bytearray()
        slot.busy_job = None
        slot.last_seen = time.time()
        slot.jobs_done = 0
        slot.retiring = False
        self.stats.spawned += 1

    def _kill(self, slot: _WorkerSlot) -> None:
        if slot.process is not None:
            if slot.process.is_alive():
                slot.process.kill()
            slot.process.join(timeout=5.0)
            slot.process = None
        if slot.sock is not None:
            try:
                slot.sock.close()
            except OSError:
                pass
            slot.sock = None
        slot.rxbuf = bytearray()
        slot.txbuf = bytearray()
        slot.busy_job = None

    def _schedule_respawn(self, slot: _WorkerSlot, now: float) -> None:
        """Kill the seat's process and book its replacement after the
        deterministic backoff delay."""
        self._kill(slot)
        slot.respawn_attempt += 1
        slot.respawn_at = now + self.backoff.delay(slot.respawn_attempt,
                                                   salt=slot.index)

    def _send(self, slot: _WorkerSlot, message) -> bool:
        """Queue one frame for the worker and push what fits *without
        blocking* — the daemon's event loop must never stall on a
        wedged worker.  The remainder drains from :meth:`poll`; a
        worker that stops reading for ``hang_timeout`` is reaped by
        the stalled-send check in :meth:`_poll_slot`.  Returns False
        only when the seat's socket is dead."""
        if slot.sock is None:
            return False
        payload = pickle.dumps(message)
        if not slot.txbuf:
            slot.tx_since = time.time()
        slot.txbuf.extend(_HEADER.pack(len(payload)) + payload)
        return self._flush(slot)

    def _flush(self, slot: _WorkerSlot) -> bool:
        """Non-blocking push of queued bytes; False on a dead socket."""
        while slot.txbuf:
            try:
                sent = slot.sock.send(slot.txbuf)
            except (BlockingIOError, InterruptedError):
                return True  # socket buffer full: retry next poll
            except OSError:
                return False
            del slot.txbuf[:sent]
        return True

    # ------------------------------------------------------------------
    def idle_slots(self) -> int:
        return sum(1 for slot in self._slots
                   if slot.alive and slot.busy_job is None
                   and not slot.retiring)

    def busy_jobs(self) -> List[str]:
        return [slot.busy_job[0] for slot in self._slots
                if slot.busy_job is not None]

    def dispatch(self, job_id: str, kind: str, params: Dict,
                 fault=None) -> bool:
        """Hand one job to an idle live worker; False when none free.
        ``fault`` is an optional chaos directive shipped in the job
        frame (see :mod:`repro.service.chaos`)."""
        for slot in self._slots:
            if slot.alive and slot.busy_job is None and not slot.retiring:
                if not self._send(slot, ("job", job_id, kind, params,
                                         fault)):
                    continue  # found dead at dispatch: poll() reaps it
                slot.busy_job = (job_id, kind, params)
                slot.started_at = time.time()
                slot.last_seen = slot.started_at
                return True
        return False

    def kill_one_worker(self) -> Optional[int]:
        """Fault-injection hook (tests / serve-smoke): SIGKILL one
        worker, preferring one that is mid-job.  Returns its pid."""
        busy = [s for s in self._slots if s.alive and s.busy_job]
        targets = busy or [s for s in self._slots if s.alive]
        if not targets:
            return None
        pid = targets[0].process.pid
        targets[0].process.kill()
        return pid

    # ------------------------------------------------------------------
    def poll(self, now: Optional[float] = None) -> List[FleetEvent]:
        """Drain worker sockets, enforce liveness, respawn dead seats.

        Returns the batch of job events for the daemon to record.
        Never blocks.
        """
        now = now if now is not None else time.time()
        events: List[FleetEvent] = []
        for slot in self._slots:
            events.extend(self._poll_slot(slot, now))
        return events

    def _drain(self, slot: _WorkerSlot) -> Tuple[List, bool]:
        """Non-blocking read of everything the worker sent.  Returns
        ``(messages, torn)``.

        Complete frames already buffered are parsed and returned even
        when the stream then tears (EOF, reset, garbage): a worker
        that sends its ``done`` frame and exits in the same poll has
        *delivered* its result — discarding it would re-dispatch (or,
        on the last attempt, fail) a job that completed.
        """
        torn = False
        while True:
            try:
                chunk = slot.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                torn = True
                break
            if not chunk:
                torn = True  # EOF: worker gone
                break
            slot.rxbuf.extend(chunk)
        messages: List = []
        try:
            parse_frames(slot.rxbuf, messages)
        except (pickle.UnpicklingError, ValueError, EOFError):
            torn = True  # garbled tail; the good prefix stands
        return messages, torn

    def _poll_slot(self, slot: _WorkerSlot, now: float) -> List[FleetEvent]:
        events: List[FleetEvent] = []
        if slot.process is None:
            # Seat waiting on its backoff timer.
            if now >= slot.respawn_at:
                self._spawn(slot)
            return events

        sendable = self._flush(slot)  # drain any buffered outbound frames
        messages, torn = self._drain(slot)
        torn = torn or not sendable
        for message in messages:
            if message[0] == "hb":
                slot.last_seen = now
            elif message[0] == "done":
                _, job_id, state, summary, artifact, name = message
                slot.last_seen = now
                slot.jobs_done += 1
                self.stats.jobs_completed += 1
                if slot.busy_job and slot.busy_job[0] == job_id:
                    slot.busy_job = None
                slot.respawn_attempt = 0
                events.append(("done", job_id, state, summary,
                               artifact, name))

        # Liveness verdicts, in order of certainty.
        if torn or not slot.process.is_alive():
            if slot.busy_job is not None:
                job_id, kind, params = slot.busy_job
                self.stats.crashes += 1
                events.append(("crashed", job_id, kind, params,
                               "worker process died"))
            elif not slot.retiring:
                self.stats.crashes += 1
            self._schedule_respawn(slot, now)
            return events

        if slot.busy_job is not None:
            job_id, kind, params = slot.busy_job
            if self.job_deadline is not None and \
                    now - slot.started_at > self.job_deadline:
                # Deadline expiry is policy, not a fault: degrade to a
                # first-class unknown, no retry (a deterministic job
                # that timed out once will time out again).
                self.stats.deadline_kills += 1
                events.append(("done", job_id, "unknown",
                               {"error": "job deadline "
                                f"({self.job_deadline:.1f}s) exceeded"},
                               None, None))
                self._schedule_respawn(slot, now)
                return events
            if now - slot.last_seen > self.hang_timeout:
                self.stats.hangs += 1
                events.append(("crashed", job_id, kind, params,
                               "worker heartbeat stalled"))
                self._schedule_respawn(slot, now)
                return events

        # A worker that heartbeats but never reads its socket would
        # otherwise hold queued frames forever (the heartbeat thread
        # keeps last_seen fresh while the main loop is wedged).
        if slot.txbuf and now - slot.tx_since > self.hang_timeout:
            self.stats.hangs += 1
            if slot.busy_job is not None:
                job_id, kind, params = slot.busy_job
                events.append(("crashed", job_id, kind, params,
                               "worker stopped reading its socket"))
            self._schedule_respawn(slot, now)
            return events

        # Idle recycling: retire leak-prone workers between jobs only.
        if self.recycle_after and slot.busy_job is None and \
                slot.jobs_done >= self.recycle_after:
            self.stats.recycles += 1
            self._send(slot, ("stop",))
            self._kill(slot)
            slot.respawn_attempt = 0
            slot.respawn_at = now
        return events

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Graceful fleet shutdown: ask, then insist."""
        for slot in self._slots:
            if slot.sock is not None:
                self._send(slot, ("stop",))
        deadline = time.time() + 5.0
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(timeout=max(0.1, deadline - time.time()))
        for slot in self._slots:
            self._kill(slot)

    def status(self) -> Dict:
        return {
            "workers": [
                {
                    "index": slot.index,
                    "alive": slot.alive,
                    "pid": slot.process.pid if slot.process else None,
                    "busy": slot.busy_job[0] if slot.busy_job else None,
                    "jobs_done": slot.jobs_done,
                    "respawn_attempt": slot.respawn_attempt,
                }
                for slot in self._slots
            ],
            "stats": self.stats.as_dict(),
        }
