"""Content-addressed on-disk artifact store shared across runs.

One entry per file, under ``<root>/<namespace>/<kk>/<key>`` where
``kk`` is the first two hex digits of the (already content-derived)
key — the same canonical fingerprints the in-memory caches use:
:func:`repro.formal.cache.problem_fingerprint` for verdicts,
:func:`repro.netlist.netlist_fingerprint`-based blast keys for blasted
designs.  The entry format is a single JSON header line followed by
the raw payload bytes::

    {"format":"repro-store-entry","version":1,"namespace":...,
     "key":...,"codec":"json"|"pickle","sha256":...,"size":N}\\n
    <payload bytes>

Durability and integrity are the point of this module:

* **atomic writes** — payloads land in a temp file in the entry's own
  directory, are flushed and fsynced, then renamed into place; a crash
  mid-write leaves only a ``.tmp-`` file (swept by :meth:`gc` and
  ignored by reads), never a half-entry under the real name;
* **verified reads** — every read re-hashes the payload against the
  header's sha256 and checks the header's namespace/key against the
  requested ones; any mismatch (truncation, bit flips, a foreign file)
  *quarantines* the entry — renames it to ``<name>.corrupt`` — and
  reports a miss so the caller recomputes instead of consuming garbage;
* **LRU eviction** — reads bump the entry's mtime, so :meth:`gc` can
  evict least-recently-used entries past a byte cap;
* **cross-run counters** — per-session hit/miss/write/corruption
  deltas are folded into ``<root>/counters.json`` on :meth:`close`, so
  ``repro cache stats`` can show lifetime effectiveness.

Concurrent access (daemon workers, overlapping CLI runs, and *two
daemons sharing one root*) is safe by construction plus one advisory
lock: entries are immutable once written (same key ⇒ same content) and
writes are atomic renames, so readers never see a half-entry; the
``store.lock`` flock arbitrates the remaining races.  Writers hold it
*shared* for the tmp-write → rename window and :meth:`gc` holds it
*exclusive* for its whole sweep, so a concurrent ``repro cache gc``
(or a second daemon's gc) can never unlink files out from under a
mid-flight writer, and counter folds are exact rather than merely
undercounting.

``byte_budget`` is a fault-injection shim for the service chaos
harness: once the session has written that many payload bytes, every
further :meth:`put_bytes` raises ``ENOSPC`` — the deterministic stand-
in for a full disk.  Callers (the persistent caches) must degrade to
cache misses, never to failed jobs.
"""

from __future__ import annotations

import contextlib
import errno
import fcntl
import hashlib
import json
import os
import pickle
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from ..errors import StoreError

ENTRY_FORMAT = "repro-store-entry"
ENTRY_VERSION = 1
_KEY_CHARS = set("0123456789abcdef")

#: advisory lock file at the store root (shared by writers, exclusive
#: for gc/counter folds); never a namespace, so entry scans skip it
LOCK_NAME = "store.lock"

#: session counters folded into counters.json on close()
_COUNTER_KEYS = ("hits", "misses", "writes", "corrupt", "evictions")


def _valid_key(key: str) -> bool:
    """Keys are content hashes: lowercase hex, sane length."""
    return (isinstance(key, str) and 8 <= len(key) <= 128
            and all(c in _KEY_CHARS for c in key))


class ArtifactStore:
    """See the module docstring.  ``root`` is created on first write."""

    def __init__(self, root: str, byte_budget: Optional[int] = None):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self.evictions = 0
        #: entry paths quarantined (renamed ``.corrupt``) this session
        self.quarantined: List[str] = []
        #: chaos shim: payload bytes this session may write before
        #: put_bytes starts raising ENOSPC (None = unlimited)
        self.byte_budget = byte_budget
        self.bytes_written = 0
        #: writes refused by the byte budget (diagnostic)
        self.budget_refusals = 0

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------
    def _lock_path(self) -> str:
        return os.path.join(self.root, LOCK_NAME)

    @contextlib.contextmanager
    def _locked(self, exclusive: bool = False):
        """Hold the store's advisory flock for the duration.

        Shared for writers (many may interleave — their renames are
        atomic), exclusive for gc and counter folds (which enumerate
        and unlink, and must not race a writer's tmp → rename window).
        A fresh fd per acquisition keeps this re-entrant across store
        instances; the same *instance* never nests an exclusive inside
        a shared section (gc and put_bytes never call each other).
        """
        os.makedirs(self.root, exist_ok=True)
        handle = open(self._lock_path(), "a")
        try:
            fcntl.flock(handle,
                        fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            yield
        finally:
            try:
                fcntl.flock(handle, fcntl.LOCK_UN)
            except OSError:
                pass
            handle.close()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _entry_path(self, namespace: str, key: str) -> str:
        if not namespace or "/" in namespace or namespace.startswith("."):
            raise StoreError(f"invalid store namespace {namespace!r}")
        if not _valid_key(key):
            raise StoreError(f"invalid store key {key!r}")
        return os.path.join(self.root, namespace, key[:2], key)

    # ------------------------------------------------------------------
    # Raw byte access
    # ------------------------------------------------------------------
    def put_bytes(self, namespace: str, key: str, payload: bytes,
                  codec: str = "bytes") -> None:
        """Write one entry atomically (idempotent: same key, same
        content — rewriting is harmless).  Holds the store flock
        *shared* for the tmp-write → rename window so a concurrent
        exclusive :meth:`gc` cannot sweep the temp file or unlink the
        shard directory mid-flight."""
        path = self._entry_path(namespace, key)
        header = json.dumps({
            "format": ENTRY_FORMAT, "version": ENTRY_VERSION,
            "namespace": namespace, "key": key, "codec": codec,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "size": len(payload),
        }, sort_keys=True, separators=(",", ":")).encode("utf-8")
        if self.byte_budget is not None and \
                self.bytes_written + len(payload) > self.byte_budget:
            self.budget_refusals += 1
            raise OSError(errno.ENOSPC,
                          f"store byte budget exhausted "
                          f"({self.byte_budget} bytes)")
        with self._locked(exclusive=False):
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(header + b"\n" + payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        self.bytes_written += len(payload)
        self.writes += 1

    def get_bytes(self, namespace: str, key: str
                  ) -> Optional[Tuple[bytes, str]]:
        """Return ``(payload, codec)`` or None (miss / quarantined)."""
        path = self._entry_path(namespace, key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            self._quarantine(path)
            return None
        entry = self._decode(raw, namespace, key)
        if entry is None:
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        self._touch(path)
        return entry

    def _decode(self, raw: bytes, namespace: str, key: str
                ) -> Optional[Tuple[bytes, str]]:
        """Validate one entry's bytes; None means corrupt."""
        newline = raw.find(b"\n")
        if newline < 0:
            return None
        try:
            header = json.loads(raw[:newline].decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(header, dict) \
                or header.get("format") != ENTRY_FORMAT \
                or header.get("namespace") != namespace \
                or header.get("key") != key:
            return None
        payload = raw[newline + 1:]
        if header.get("size") != len(payload):
            return None  # truncated (or padded) payload
        if header.get("sha256") != hashlib.sha256(payload).hexdigest():
            return None  # bit flips
        codec = header.get("codec")
        if not isinstance(codec, str):
            return None
        return payload, codec

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside; the caller recomputes."""
        self.corrupt += 1
        target = path + ".corrupt"
        try:
            os.replace(path, target)
            self.quarantined.append(target)
        except OSError:
            # Already gone or unwritable: the read still missed.
            pass

    @staticmethod
    def _touch(path: str) -> None:
        """Bump mtime so gc's LRU order tracks reads, not just writes."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Typed convenience layers
    # ------------------------------------------------------------------
    def put_json(self, namespace: str, key: str, payload: Dict) -> None:
        data = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        self.put_bytes(namespace, key, data, codec="json")

    def get_json(self, namespace: str, key: str) -> Optional[Dict]:
        entry = self.get_bytes(namespace, key)
        if entry is None:
            return None
        payload, codec = entry
        if codec != "json":
            return None
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return decoded if isinstance(decoded, dict) else None

    def put_pickle(self, namespace: str, key: str, value: object) -> None:
        self.put_bytes(namespace, key,
                       pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
                       codec="pickle")

    def get_pickle(self, namespace: str, key: str) -> Optional[object]:
        entry = self.get_bytes(namespace, key)
        if entry is None:
            return None
        payload, codec = entry
        if codec != "pickle":
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            # sha256 matched, so this is a schema change (e.g. an entry
            # pickled by an older code version), not disk corruption —
            # still: quarantine and recompute.
            self._quarantine(self._entry_path(namespace, key))
            return None

    # ------------------------------------------------------------------
    # Maintenance: scan / verify / gc
    # ------------------------------------------------------------------
    def _iter_entry_paths(self) -> List[Tuple[str, str, str]]:
        """All (namespace, key, path) triples currently on disk."""
        found: List[Tuple[str, str, str]] = []
        if not os.path.isdir(self.root):
            return found
        for namespace in sorted(os.listdir(self.root)):
            ns_dir = os.path.join(self.root, namespace)
            if not os.path.isdir(ns_dir):
                continue
            for shard in sorted(os.listdir(ns_dir)):
                shard_dir = os.path.join(ns_dir, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    path = os.path.join(shard_dir, name)
                    if name.endswith(".corrupt") or name.startswith(".tmp-"):
                        continue
                    if os.path.isfile(path):
                        found.append((namespace, name, path))
        return found

    def verify(self) -> Dict[str, int]:
        """Re-verify every entry's checksum; quarantine failures.

        Returns ``{"checked": n, "ok": n, "quarantined": n}``.
        """
        checked = ok = quarantined = 0
        for namespace, key, path in self._iter_entry_paths():
            checked += 1
            try:
                with open(path, "rb") as handle:
                    raw = handle.read()
            except OSError:
                self._quarantine(path)
                quarantined += 1
                continue
            if not _valid_key(key) or \
                    self._decode(raw, namespace, key) is None:
                self._quarantine(path)
                quarantined += 1
            else:
                ok += 1
        return {"checked": checked, "ok": ok, "quarantined": quarantined}

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used entries until the store fits in
        ``max_bytes``; also sweeps orphaned temp files from crashed
        writes.  Returns ``{"evicted": n, "freed_bytes": n,
        "remaining_bytes": n, "swept_tmp": n}``.

        Holds the store flock *exclusive* for the whole sweep: without
        it, ``repro cache gc`` racing a live daemon could unlink a
        writer's temp file (or its freshly renamed entry's directory
        scan state) between the tmp-write and the rename.  Writers
        hold the lock shared, so gc simply waits for in-flight writes
        to land and blocks new ones for the duration.
        """
        with self._locked(exclusive=True):
            return self._gc_locked(max_bytes)

    def _gc_locked(self, max_bytes: int) -> Dict[str, int]:
        swept = 0
        now = time.time()
        if os.path.isdir(self.root):
            for dirpath, _dirnames, filenames in os.walk(self.root):
                for name in filenames:
                    if not name.startswith(".tmp-"):
                        continue
                    path = os.path.join(dirpath, name)
                    try:
                        # Only sweep *stale* temp files: a fresh one may
                        # be a concurrent writer mid-flight.
                        if now - os.stat(path).st_mtime > 60.0:
                            os.unlink(path)
                            swept += 1
                    except OSError:
                        pass
        entries = []
        total = 0
        for _namespace, _key, path in self._iter_entry_paths():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort()  # oldest mtime (least recently used) first
        evicted = freed = 0
        for _mtime, size, path in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            freed += size
            evicted += 1
        self.evictions += evicted
        return {"evicted": evicted, "freed_bytes": freed,
                "remaining_bytes": total, "swept_tmp": swept}

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Session counters plus on-disk totals and lifetime counters."""
        per_namespace: Dict[str, int] = {}
        total_bytes = 0
        entries = 0
        for namespace, _key, path in self._iter_entry_paths():
            try:
                size = os.stat(path).st_size
            except OSError:
                continue
            entries += 1
            total_bytes += size
            per_namespace[namespace] = per_namespace.get(namespace, 0) + 1
        return {
            "root": self.root,
            "entries": entries,
            "total_bytes": total_bytes,
            "namespaces": per_namespace,
            "session": {key: getattr(self, key) for key in _COUNTER_KEYS},
            "lifetime": self._read_counters(),
        }

    def _counters_path(self) -> str:
        return os.path.join(self.root, "counters.json")

    def _read_counters(self) -> Dict[str, int]:
        try:
            with open(self._counters_path(), "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {key: 0 for key in _COUNTER_KEYS}
        if not isinstance(data, dict):
            return {key: 0 for key in _COUNTER_KEYS}
        return {key: int(data.get(key, 0) or 0) for key in _COUNTER_KEYS}

    def flush_counters(self) -> None:
        """Fold this session's counters into the lifetime totals.

        The read-modify-write runs under the exclusive store flock, so
        two daemons closing against one root fold both deltas instead
        of the last writer silently dropping the other's counts."""
        deltas = {key: getattr(self, key) for key in _COUNTER_KEYS}
        if not any(deltas.values()):
            return
        with self._locked(exclusive=True):
            totals = self._read_counters()
            for key, value in deltas.items():
                totals[key] = totals.get(key, 0) + value
                setattr(self, key, 0)
            fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=self.root)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(totals, handle, sort_keys=True)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, self._counters_path())
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise

    def close(self) -> None:
        self.flush_counters()

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
