"""Litmus tests: representation, suite, diy-style generation, compilation."""

from .compile import compile_test, location_map, register_map
from .generator import (
    CorpusSpec,
    canonical_program,
    corpus_digest,
    fingerprint,
    generate_safe_tests,
    iter_programs,
    iter_tests,
    parse_spec,
    program_name,
)
from .io import read_suite, write_suite
from .suite import SUITE_SIZE, load_suite, resolve_tests, suite_by_name
from .test import LitmusTest, parse_litmus

__all__ = [
    "LitmusTest",
    "parse_litmus",
    "load_suite",
    "resolve_tests",
    "suite_by_name",
    "SUITE_SIZE",
    "generate_safe_tests",
    "CorpusSpec",
    "parse_spec",
    "iter_programs",
    "iter_tests",
    "canonical_program",
    "fingerprint",
    "program_name",
    "corpus_digest",
    "write_suite",
    "read_suite",
    "compile_test",
    "location_map",
    "register_map",
]
