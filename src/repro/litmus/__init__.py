"""Litmus tests: representation, suite, diy-style generation, compilation."""

from .compile import compile_test, location_map, register_map
from .generator import generate_safe_tests
from .io import read_suite, write_suite
from .suite import SUITE_SIZE, load_suite, resolve_tests, suite_by_name
from .test import LitmusTest, parse_litmus

__all__ = [
    "LitmusTest",
    "parse_litmus",
    "load_suite",
    "resolve_tests",
    "suite_by_name",
    "SUITE_SIZE",
    "generate_safe_tests",
    "write_suite",
    "read_suite",
    "compile_test",
    "location_map",
    "register_map",
]
