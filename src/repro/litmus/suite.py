"""The 56-test litmus suite (paper section 5.2).

The paper evaluates 56 tests: hand-written x86-TSO-suite classics plus
diy-generated tests. Here the named classics are written out explicitly
and the remainder come from the diy-style generator in
``repro.litmus.generator`` (``safe0xx`` names), totalling exactly 56.
"""

from __future__ import annotations

from typing import Dict, List

from ..mcm.events import R, W
from .generator import generate_safe_tests
from .test import LitmusTest

SUITE_SIZE = 56


def _named_tests() -> List[LitmusTest]:
    tests = [
        LitmusTest(
            "mp",
            ((W("x", 1), W("y", 1)),
             (R("y", "r1"), R("x", "r2"))),
            (((1, "r1"), 1), ((1, "r2"), 0)),
            comment="message passing: flag seen but not data",
        ),
        LitmusTest(
            "sb",
            ((W("x", 1), R("y", "r1")),
             (W("y", 1), R("x", "r2"))),
            (((0, "r1"), 0), ((1, "r2"), 0)),
            comment="store buffering: both loads miss both stores",
        ),
        LitmusTest(
            "lb",
            ((R("x", "r1"), W("y", 1)),
             (R("y", "r2"), W("x", 1))),
            (((0, "r1"), 1), ((1, "r2"), 1)),
            comment="load buffering: both loads see the other's store",
        ),
        LitmusTest(
            "wrc",
            ((W("x", 1),),
             (R("x", "r1"), W("y", 1)),
             (R("y", "r2"), R("x", "r3"))),
            (((1, "r1"), 1), ((2, "r2"), 1), ((2, "r3"), 0)),
            comment="write-to-read causality",
        ),
        LitmusTest(
            "rwc",
            ((W("x", 1),),
             (R("x", "r1"), R("y", "r2")),
             (W("y", 1), R("x", "r3"))),
            (((1, "r1"), 1), ((1, "r2"), 0), ((2, "r3"), 0)),
            comment="read-to-write causality",
        ),
        LitmusTest(
            "iriw",
            ((W("x", 1),),
             (W("y", 1),),
             (R("x", "r1"), R("y", "r2")),
             (R("y", "r3"), R("x", "r4"))),
            (((2, "r1"), 1), ((2, "r2"), 0), ((3, "r3"), 1), ((3, "r4"), 0)),
            comment="independent reads of independent writes",
        ),
        LitmusTest(
            "2+2w",
            ((W("x", 1), W("y", 2)),
             (W("y", 1), W("x", 2))),
            (((0, "r0"), 0),),  # placeholder final; replaced below
            comment="write serialization across two locations",
        ),
        LitmusTest(
            "s",
            ((W("x", 2), W("y", 1)),
             (R("y", "r1"), W("x", 1))),
            (((1, "r1"), 1), ((-1, "x"), 2)),
            comment="S: the overwritten store finishes last",
        ),
        LitmusTest(
            "r",
            ((W("x", 1), W("y", 1)),
             (W("y", 2), R("x", "r1"))),
            (((1, "r1"), 0), ((-1, "y"), 2)),
            comment="R: write racing a read-after-write",
        ),
        LitmusTest(
            "corr",
            ((W("x", 1),),
             (R("x", "r1"), R("x", "r2"))),
            (((1, "r1"), 1), ((1, "r2"), 0)),
            comment="coherent read-read: no value oscillation",
        ),
        LitmusTest(
            "corw",
            ((R("x", "r1"), W("x", 1)),),
            (((0, "r1"), 1),),
            comment="coherent read-write: load cannot see later same-thread store",
        ),
        LitmusTest(
            "cowr",
            ((W("x", 1), R("x", "r1")),
             (W("x", 2),)),
            (((0, "r1"), 0),),
            comment="coherent write-read: load sees own store or newer",
        ),
        LitmusTest(
            "ssl",
            ((W("x", 1), W("y", 1)),
             (W("y", 2), R("y", "r1"), R("x", "r2"))),
            (((1, "r1"), 1), ((1, "r2"), 0)),
            comment="store-store-load variant",
        ),
        LitmusTest(
            "mp+stale",
            ((W("x", 1), W("y", 1)),
             (R("y", "r1"), R("y", "r2"), R("x", "r3"))),
            (((1, "r1"), 1), ((1, "r3"), 0)),
            comment="message passing with a repeated flag read",
        ),
    ]
    # 2+2w's condition is on the final memory state.
    tests[6] = LitmusTest(
        "2+2w",
        ((W("x", 1), W("y", 2)),
         (W("y", 1), W("x", 2))),
        (((-1, "x"), 1), ((-1, "y"), 1)),
        comment="write serialization: both first writes finish last",
    )
    return tests


def load_suite(size: int = SUITE_SIZE) -> List[LitmusTest]:
    """The evaluation suite: named classics + generated safe tests."""
    tests = _named_tests()
    if len(tests) > size:
        return tests[:size]
    generated = generate_safe_tests(size - len(tests))
    return tests + generated


def suite_by_name(size: int = SUITE_SIZE) -> Dict[str, LitmusTest]:
    return {test.name: test for test in load_suite(size)}


def resolve_tests(names: List[str]) -> List[LitmusTest]:
    """Map test names to suite tests; unknown names raise a
    :class:`repro.errors.LitmusError` with did-you-mean suggestions
    (the CLI maps it to exit code 2)."""
    by_name = suite_by_name()
    unknown = [name for name in names if name not in by_name]
    if unknown:
        import difflib

        from ..errors import LitmusError
        parts = []
        for name in unknown:
            close = difflib.get_close_matches(name, by_name, n=3)
            hint = f" (did you mean: {', '.join(close)}?)" if close else ""
            parts.append(f"{name!r}{hint}")
        raise LitmusError(
            f"unknown litmus test(s): {'; '.join(parts)} — "
            f"see `rtl2uspec litmus --names` for the suite")
    return [by_name[name] for name in names]
