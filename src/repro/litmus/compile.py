"""Compile litmus tests to multi-V-scale RV32 programs.

Used to run litmus tests directly on the RTL (the RTLCheck-style
baseline, and end-to-end validation of the simulator).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..designs import isa
from ..errors import LitmusError
from .test import LitmusTest

#: Byte address assigned to the n-th distinct symbolic location.
LOCATION_STRIDE = 4


def location_map(test: LitmusTest) -> Dict[str, int]:
    """Symbolic location -> word-aligned byte address."""
    return {addr: i * LOCATION_STRIDE for i, addr in enumerate(test.addresses())}


def register_map(test: LitmusTest) -> Dict[Tuple[int, str], int]:
    """(thread, litmus register) -> architectural register index.

    Registers x8.. hold observed values; x1..x7 are scratch.
    """
    mapping: Dict[Tuple[int, str], int] = {}
    for tid, thread in enumerate(test.program):
        next_reg = 8
        for access in thread:
            if access.kind == "R" and (tid, access.reg) not in mapping:
                if next_reg >= 32:
                    raise LitmusError("too many litmus registers for one thread")
                mapping[(tid, access.reg)] = next_reg
                next_reg += 1
    return mapping


def compile_test(test: LitmusTest) -> List[List[int]]:
    """Per-thread RV32 instruction words implementing the litmus test.

    Store values are materialized with ``addi`` into a scratch register;
    loads land in the mapped observer registers.
    """
    locations = location_map(test)
    registers = register_map(test)
    programs: List[List[int]] = []
    scratch = 1  # x1 holds store data; x0 is the address base (0)
    for tid, thread in enumerate(test.program):
        words: List[int] = []
        for access in thread:
            if access.kind == "F":
                # The multi-V-scale commits memory operations in order, so
                # a fence compiles to a NOP (keeps instruction spacing).
                words.append(isa.NOP)
                continue
            byte_addr = locations[access.addr]
            if access.kind == "W":
                words.append(isa.li(scratch, access.value))
                words.append(isa.sw(scratch, 0, byte_addr))
            else:
                words.append(isa.lw(registers[(tid, access.reg)], 0, byte_addr))
        programs.append(words)
    return programs
