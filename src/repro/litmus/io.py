"""Litmus suite file I/O.

The RTLCheck artifact distributes its 56 tests as ``*.test`` files; this
module writes/reads the suite in the same spirit so external tools (or
a curious user) can inspect and edit tests as plain text.
"""

from __future__ import annotations

import os
from typing import List

from ..errors import LitmusError
from .suite import load_suite
from .test import LitmusTest, parse_litmus


def write_suite(directory: str, tests: List[LitmusTest] = None) -> List[str]:
    """Write tests (default: the full 56-test suite) as ``<name>.test``
    files; returns the written paths."""
    tests = tests if tests is not None else load_suite()
    os.makedirs(directory, exist_ok=True)
    paths = []
    for test in tests:
        safe = test.name.replace("+", "_plus_").replace("/", "_")
        path = os.path.join(directory, f"{safe}.test")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(test.format() + "\n")
        paths.append(path)
    return paths


def read_suite(directory: str) -> List[LitmusTest]:
    """Parse every ``*.test`` file in a directory (sorted by name)."""
    if not os.path.isdir(directory):
        raise LitmusError(f"{directory!r} is not a directory")
    tests = []
    for fname in sorted(os.listdir(directory)):
        if not fname.endswith(".test"):
            continue
        with open(os.path.join(directory, fname), "r", encoding="utf-8") as handle:
            tests.append(parse_litmus(handle.read()))
    if not tests:
        raise LitmusError(f"no .test files found in {directory!r}")
    return tests
