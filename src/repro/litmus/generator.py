"""diy-style litmus test generation.

The diy tool (Alglave et al., paper ref [2]) synthesizes litmus tests
from *critical cycles* of relaxed-ordering edges. Two generations of
that idea live here:

* the **legacy fixed-shape generator** (:func:`generate_safe_tests`),
  which enumerates five hand-listed program shapes over two locations
  and backs the ``safeNNN`` members of the canonical 56-test suite —
  its enumeration order is frozen so existing suite names stay stable;

* the **streaming template enumerator** (:class:`CorpusSpec`,
  :func:`iter_programs`, :func:`iter_tests`), a TriCheck-style corpus
  generator (Trippel et al.) parameterized over threads × addresses ×
  store values × fence placement. It yields lazily, dedups by a
  canonical fingerprint (modulo thread permutation and address
  renaming), and names tests deterministically ``gen-<fingerprint>``,
  so corpora of tens of thousands of programs stream with a stable
  digest across runs.
"""

from __future__ import annotations

import hashlib
import itertools
import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import LitmusError
from ..mcm.events import Access, Program, R, W, F
from ..mcm.sc import sc_outcomes
from .test import LitmusTest


def _access_patterns(addrs: Sequence[str], thread_len: int) -> Iterable[Tuple[Access, ...]]:
    """Enumerate per-thread instruction sequences over the given
    addresses: each slot is a load or a store of value 1."""
    slots: List[List[Access]] = []
    per_slot: List[Access] = []
    for addr in addrs:
        per_slot.append(W(addr, 1))
        per_slot.append(R(addr, "r?"))
    for combo in itertools.product(per_slot, repeat=thread_len):
        yield combo


def _assign_registers(program: Sequence[Sequence[Access]]) -> Program:
    """Give each load a unique register name rN (per thread)."""
    out: List[Tuple[Access, ...]] = []
    for thread in program:
        counter = 1
        accesses: List[Access] = []
        for access in thread:
            if access.kind == "R":
                accesses.append(R(access.addr, f"r{counter}"))
                counter += 1
            else:
                accesses.append(access)
        out.append(tuple(accesses))
    return tuple(out)


def _canonical(program: Program, final) -> Tuple:
    """Canonical form up to thread order (for dedup)."""
    per_thread = []
    final_by_thread = {}
    for (tid, reg), val in final:
        final_by_thread.setdefault(tid, []).append((reg, val))
    for tid, thread in enumerate(program):
        key = tuple((a.kind, a.addr, a.value) for a in thread)
        cond = tuple(sorted(final_by_thread.get(tid, [])))
        per_thread.append((key, cond))
    mem_cond = tuple(sorted(final_by_thread.get(-1, [])))
    return (tuple(sorted(per_thread)), mem_cond)


def _interesting_conditions(program: Program):
    """Candidate final conditions: one value choice per load.

    A condition is a full assignment of each load to either 0 or 1 —
    the typical diy shape where the witness condition pins every
    observer register.
    """
    loads = [(tid, access.reg) for tid, thread in enumerate(program)
             for access in thread if access.kind == "R"]
    if not loads:
        return
    for values in itertools.product((0, 1), repeat=len(loads)):
        yield tuple(((tid, reg), val) for (tid, reg), val in zip(loads, values))


def _useful(program: Program) -> bool:
    """Filter degenerate programs: every thread touches shared data, at
    least one store and one load exist overall, and at least two
    distinct threads communicate."""
    kinds = {a.kind for t in program for a in t}
    if kinds != {"R", "W"}:
        return False
    # A thread that only loads locations nobody writes is noise.
    written = {a.addr for t in program for a in t if a.kind == "W"}
    for thread in program:
        touched = {a.addr for a in thread}
        if not touched & written:
            return False
    # Require cross-thread communication on some address.
    for addr in written:
        writers = {tid for tid, t in enumerate(program)
                   for a in t if a.kind == "W" and a.addr == addr}
        readers = {tid for tid, t in enumerate(program)
                   for a in t if a.kind == "R" and a.addr == addr}
        if readers - writers:
            return True
    return False


def generate_safe_tests(count: int, seed_names: str = "safe") -> List[LitmusTest]:
    """Generate up to ``count`` unique SC-forbidden ("safe") litmus tests.

    The enumeration order (and therefore the ``safeNNN`` naming) is
    frozen: the canonical 56-test suite depends on it. If the fixed
    shape list is exhausted before ``count`` tests are found, the tests
    found so far are returned and a :class:`UserWarning` is emitted —
    callers needing larger corpora should use :func:`iter_tests` with a
    :class:`CorpusSpec` instead.
    """
    found: List[LitmusTest] = []
    seen: Set[Tuple] = set()
    addrs = ("x", "y")

    shapes: List[Tuple[int, ...]] = [(2, 2), (2, 3), (3, 2), (1, 2, 2), (2, 2, 2)]
    for shape in shapes:
        if len(found) >= count:
            break
        thread_patterns = [list(_access_patterns(addrs, length)) for length in shape]
        for combo in itertools.product(*thread_patterns):
            if len(found) >= count:
                break
            program = _assign_registers(combo)
            if not _useful(program):
                continue
            outcomes = None
            for final in _interesting_conditions(program):
                canon = _canonical(program, final)
                if canon in seen:
                    continue
                if outcomes is None:
                    outcomes = sc_outcomes(program)
                values_possible = any(
                    all(dict(o).get(key) == val for key, val in final)
                    for o in outcomes)
                if values_possible:
                    continue  # SC-observable: not a "safe" test
                seen.add(canon)
                name = f"{seed_names}{len(found) + 1:03d}"
                found.append(LitmusTest(
                    name, program, final,
                    comment="diy-style generated SC-forbidden outcome"))
                if len(found) >= count:
                    break
    if len(found) < count:
        warnings.warn(
            f"fixed-shape generator exhausted: produced {len(found)}/{count} "
            f"tests; use a CorpusSpec corpus (repro generate) for larger runs",
            UserWarning, stacklevel=2)
    return found


# ---------------------------------------------------------------------------
# Streaming template enumerator (ROADMAP item 4).
# ---------------------------------------------------------------------------

#: Symbolic location names handed out by address-count specs.
SPEC_ADDRESSES = ("x", "y", "z", "w", "u", "v")

#: Recognised fence-placement modes.
FENCE_MODES = ("none", "full", "enum")

#: Recognised condition kinds.
TEST_KINDS = ("safe", "all")


@dataclass(frozen=True)
class CorpusSpec:
    """Parameter box for the streaming enumerator.

    ``threads`` is the exact thread count; per-thread lengths range over
    ``1..max_len`` (only non-increasing length shapes are enumerated —
    thread-permutation dedup makes the rest redundant). ``addresses``
    and ``values`` are the location and store-value palettes. ``fences``
    places full fences in the gaps between a thread's accesses:
    ``"none"`` (no fences), ``"full"`` (every gap), or ``"enum"``
    (every subset of gaps — the fence-placement axis). ``kind`` selects
    which final conditions :func:`iter_tests` emits: ``"safe"`` keeps
    only SC-forbidden conditions, ``"all"`` keeps every full load
    assignment.
    """

    threads: int = 2
    max_len: int = 2
    addresses: Tuple[str, ...] = ("x", "y")
    values: Tuple[int, ...] = (1,)
    fences: str = "none"
    kind: str = "safe"

    def __post_init__(self):
        if self.threads < 1:
            raise LitmusError("corpus spec needs threads >= 1")
        if self.max_len < 1:
            raise LitmusError("corpus spec needs len >= 1")
        if not self.addresses:
            raise LitmusError("corpus spec needs at least one address")
        if len(set(self.addresses)) != len(self.addresses):
            raise LitmusError("corpus spec addresses must be distinct")
        if "-" in self.addresses:
            raise LitmusError("'-' is reserved for fence placeholders")
        if not self.values:
            raise LitmusError("corpus spec needs at least one store value")
        if self.fences not in FENCE_MODES:
            raise LitmusError(
                f"unknown fence mode {self.fences!r} (one of {FENCE_MODES})")
        if self.kind not in TEST_KINDS:
            raise LitmusError(
                f"unknown corpus kind {self.kind!r} (one of {TEST_KINDS})")

    def describe(self) -> str:
        return (f"threads={self.threads},len={self.max_len},"
                f"addrs={len(self.addresses)},values={len(self.values)},"
                f"fences={self.fences},kind={self.kind}")


def parse_spec(text: str) -> CorpusSpec:
    """Parse a ``key=value,...`` corpus spec as accepted by
    ``repro generate`` and ``repro sweep --generate``.

    Keys: ``threads`` (exact thread count), ``len`` (max per-thread
    accesses), ``addrs`` (number of locations, up to 6), ``values``
    (number of distinct store values, 1..N), ``fences``
    (none|full|enum), ``kind`` (safe|all). All optional; unknown keys
    raise :class:`LitmusError`.
    """
    fields: Dict[str, str] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise LitmusError(f"bad corpus spec entry {chunk!r} (want key=value)")
        key, value = chunk.split("=", 1)
        fields[key.strip()] = value.strip()
    kwargs: Dict[str, object] = {}
    for key, value in fields.items():
        if key == "threads":
            kwargs["threads"] = _spec_int(key, value)
        elif key == "len":
            kwargs["max_len"] = _spec_int(key, value)
        elif key == "addrs":
            n = _spec_int(key, value)
            if n > len(SPEC_ADDRESSES):
                raise LitmusError(
                    f"corpus spec supports at most {len(SPEC_ADDRESSES)} addresses")
            kwargs["addresses"] = SPEC_ADDRESSES[:n]
        elif key == "values":
            kwargs["values"] = tuple(range(1, _spec_int(key, value) + 1))
        elif key == "fences":
            kwargs["fences"] = value
        elif key == "kind":
            kwargs["kind"] = value
        else:
            raise LitmusError(f"unknown corpus spec key {key!r}")
    return CorpusSpec(**kwargs)


def _spec_int(key: str, value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise LitmusError(f"corpus spec {key}={value!r} is not an integer")
    if parsed < 1:
        raise LitmusError(f"corpus spec {key} must be >= 1")
    return parsed


# -- canonical fingerprints -------------------------------------------------

def _thread_key(thread: Sequence[Access],
                rename: Dict[str, str]) -> Tuple:
    return tuple((a.kind, rename.get(a.addr, a.addr), a.value) for a in thread)


def _address_renamings(program: Program) -> List[Dict[str, str]]:
    """All bijective renamings of the program's used addresses onto the
    canonical name sequence ``SPEC_ADDRESSES[:n]``.

    Address identity is meaningless up to renaming (``x`` vs ``y``), so
    the canonical form minimizes over every such bijection — and mapping
    onto a *fixed* target sequence also makes programs over different
    address subsets (``{x,z}`` vs ``{x,y}``) compare equal. Bounded by
    6! in principle, but programs typically touch 2-3 addresses.
    """
    used = sorted({a.addr for t in program for a in t if a.kind != "F"})
    targets = SPEC_ADDRESSES[:len(used)]
    return [dict(zip(used, perm)) for perm in itertools.permutations(targets)]


def canonical_program(program: Program) -> Tuple:
    """Canonical form of a program modulo thread order and address
    renaming (registers are already canonical: loads are numbered in
    program order per thread)."""
    best: Optional[Tuple] = None
    for rename in _address_renamings(program):
        key = tuple(sorted(_thread_key(t, rename) for t in program))
        if best is None or key < best:
            best = key
    return best if best is not None else tuple()


def canonical_test(program: Program, final) -> Tuple:
    """Canonical form of (program, condition) modulo thread order and
    address renaming; the condition travels with its thread."""
    final_by_thread: Dict[int, List[Tuple[str, int]]] = {}
    for (tid, reg), val in final:
        final_by_thread.setdefault(tid, []).append((reg, val))
    best: Optional[Tuple] = None
    for rename in _address_renamings(program):
        per_thread = tuple(sorted(
            (_thread_key(t, rename), tuple(sorted(final_by_thread.get(tid, []))))
            for tid, t in enumerate(program)))
        mem_cond = tuple(sorted(
            (rename.get(addr, addr), val)
            for addr, val in final_by_thread.get(-1, [])))
        key = (per_thread, mem_cond)
        if best is None or key < best:
            best = key
    return best if best is not None else tuple()


def fingerprint(canon: Tuple) -> str:
    """Deterministic 12-hex-digit fingerprint of a canonical form.

    Built from ``repr`` of plain tuples/strings/ints, so it does not
    depend on ``PYTHONHASHSEED`` and is stable across runs and
    machines.
    """
    return hashlib.sha256(repr(canon).encode("utf-8")).hexdigest()[:12]


def program_name(program: Program) -> str:
    """The deterministic ``gen-<fingerprint>`` name of a program."""
    return "gen-" + fingerprint(canonical_program(program))


def test_name(program: Program, final) -> str:
    """The deterministic ``gen-<fingerprint>`` name of a (program,
    condition) pair."""
    return "gen-" + fingerprint(canonical_test(program, final))


def corpus_digest(fingerprints: Iterable[str]) -> str:
    """Digest of a whole corpus: sha256 over the fingerprint stream in
    emission order. Stable across runs because enumeration order is
    deterministic."""
    acc = hashlib.sha256()
    for item in fingerprints:
        acc.update(item.encode("utf-8"))
        acc.update(b"\n")
    return acc.hexdigest()


# -- enumeration ------------------------------------------------------------

def _corpus_useful(program: Program) -> bool:
    """Degenerate-program filter for generated corpora.

    Requires at least one store and one load (ignoring fences), every
    thread to touch a written address, and — when there are two or more
    threads — cross-thread communication on some address. Single-thread
    programs only need a load of a written address (they exercise
    same-core forwarding paths, e.g. the bypass bug class)."""
    kinds = {a.kind for t in program for a in t if a.kind != "F"}
    if kinds != {"R", "W"}:
        return False
    written = {a.addr for t in program for a in t if a.kind == "W"}
    for thread in program:
        touched = {a.addr for a in thread if a.kind != "F"}
        if not touched & written:
            return False
    read = {a.addr for t in program for a in t if a.kind == "R"}
    if not read & written:
        return False
    if len(program) == 1:
        return True
    for addr in written:
        writers = {tid for tid, t in enumerate(program)
                   for a in t if a.kind == "W" and a.addr == addr}
        readers = {tid for tid, t in enumerate(program)
                   for a in t if a.kind == "R" and a.addr == addr}
        if readers - writers:
            return True
    return False


def _fence_variants(base: Tuple[Access, ...], mode: str) -> Iterator[Tuple[Access, ...]]:
    """Expand one base access sequence into its fence placements.

    Fences go only in the gaps *between* accesses (a leading or
    trailing fence orders nothing)."""
    if mode == "none" or len(base) < 2:
        yield base
        return
    gaps = len(base) - 1
    if mode == "full":
        fenced: List[Access] = []
        for i, access in enumerate(base):
            fenced.append(access)
            if i < gaps:
                fenced.append(F())
        yield tuple(fenced)
        return
    # mode == "enum": every subset of gaps, no-fence variant first.
    for mask in range(1 << gaps):
        fenced = []
        for i, access in enumerate(base):
            fenced.append(access)
            if i < gaps and (mask >> i) & 1:
                fenced.append(F())
        yield tuple(fenced)


def _thread_sequences(spec: CorpusSpec, length: int) -> List[Tuple[Access, ...]]:
    """All per-thread sequences of ``length`` accesses (before register
    assignment), expanded by the spec's fence mode."""
    per_slot: List[Access] = []
    for addr in spec.addresses:
        for value in spec.values:
            per_slot.append(W(addr, value))
        per_slot.append(R(addr, "r?"))
    out: List[Tuple[Access, ...]] = []
    for combo in itertools.product(per_slot, repeat=length):
        out.extend(_fence_variants(combo, spec.fences))
    return out


def _shapes(spec: CorpusSpec) -> Iterator[Tuple[int, ...]]:
    """Non-increasing per-thread length tuples: any program can be
    thread-permuted into this form, and the canonical fingerprint dedups
    permutations anyway — enumerating only sorted shapes skips the
    guaranteed duplicates."""
    for shape in itertools.product(range(1, spec.max_len + 1),
                                   repeat=spec.threads):
        if all(shape[i] >= shape[i + 1] for i in range(len(shape) - 1)):
            yield shape


def iter_programs(spec: CorpusSpec) -> Iterator[Tuple[str, Program]]:
    """Stream ``(fingerprint, program)`` pairs, lazily, deduped by the
    canonical program fingerprint. Enumeration order is deterministic
    for a given spec, so re-running yields the identical stream."""
    seen: Set[str] = set()
    cache: Dict[int, List[Tuple[Access, ...]]] = {}
    for shape in _shapes(spec):
        for length in set(shape):
            if length not in cache:
                cache[length] = _thread_sequences(spec, length)
        for combo in itertools.product(*(cache[length] for length in shape)):
            program = _assign_registers(combo)
            if not _corpus_useful(program):
                continue
            fp = fingerprint(canonical_program(program))
            if fp in seen:
                continue
            seen.add(fp)
            yield fp, program


def _condition_values(program: Program, spec: CorpusSpec):
    """Per-load candidate value sets: zero plus every value stored to
    that load's address anywhere in the program."""
    loads = [(tid, access.reg, access.addr)
             for tid, thread in enumerate(program)
             for access in thread if access.kind == "R"]
    stored: Dict[str, Set[int]] = {}
    for thread in program:
        for access in thread:
            if access.kind == "W":
                stored.setdefault(access.addr, set()).add(access.value)
    domains = [sorted({0} | stored.get(addr, set())) for _, _, addr in loads]
    return loads, domains


def iter_tests(spec: CorpusSpec) -> Iterator[LitmusTest]:
    """Stream generated litmus tests: each deduped program crossed with
    its candidate final conditions, filtered by ``spec.kind``.

    ``kind="safe"`` keeps only conditions *forbidden under SC* (the
    interesting witnesses: observing one on hardware is a violation).
    ``kind="all"`` keeps every full load assignment. Tests are named
    ``gen-<fingerprint>`` from the canonical (program, condition) form.
    """
    seen: Set[str] = set()
    for _, program in iter_programs(spec):
        loads, domains = _condition_values(program, spec)
        if not loads:
            continue
        outcomes = None
        for values in itertools.product(*domains):
            final = tuple((((tid, reg), val))
                          for (tid, reg, _), val in zip(loads, values))
            fp = fingerprint(canonical_test(program, final))
            if fp in seen:
                continue
            if spec.kind == "safe":
                if outcomes is None:
                    outcomes = sc_outcomes(program)
                observable = any(
                    all(dict(o).get(key) == val for key, val in final)
                    for o in outcomes)
                if observable:
                    continue
            seen.add(fp)
            yield LitmusTest(
                "gen-" + fp, program, final,
                comment=f"generated corpus ({spec.describe()})")
