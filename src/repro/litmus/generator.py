"""diy-style litmus test generation.

The diy tool (Alglave et al., paper ref [2]) synthesizes litmus tests
from *critical cycles* of relaxed-ordering edges. This generator follows
the same idea at small scale: enumerate candidate 2- and 3-thread
programs over two or three shared locations, pick the final condition
that would witness a relaxation, and keep exactly the tests whose
condition is **forbidden under SC** (the "safe" tests of the RTLCheck
suite) and unique up to renaming.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Set, Tuple

from ..mcm.events import Access, Program, R, W
from ..mcm.sc import sc_outcomes
from .test import LitmusTest


def _access_patterns(addrs: Sequence[str], thread_len: int) -> Iterable[Tuple[Access, ...]]:
    """Enumerate per-thread instruction sequences over the given
    addresses: each slot is a load or a store of value 1."""
    slots: List[List[Access]] = []
    per_slot: List[Access] = []
    for addr in addrs:
        per_slot.append(W(addr, 1))
        per_slot.append(R(addr, "r?"))
    for combo in itertools.product(per_slot, repeat=thread_len):
        yield combo


def _assign_registers(program: Sequence[Sequence[Access]]) -> Program:
    """Give each load a unique register name rN (per thread)."""
    out: List[Tuple[Access, ...]] = []
    for thread in program:
        counter = 1
        accesses: List[Access] = []
        for access in thread:
            if access.kind == "R":
                accesses.append(R(access.addr, f"r{counter}"))
                counter += 1
            else:
                accesses.append(access)
        out.append(tuple(accesses))
    return tuple(out)


def _canonical(program: Program, final) -> Tuple:
    """Canonical form up to thread order (for dedup)."""
    per_thread = []
    final_by_thread = {}
    for (tid, reg), val in final:
        final_by_thread.setdefault(tid, []).append((reg, val))
    for tid, thread in enumerate(program):
        key = tuple((a.kind, a.addr, a.value) for a in thread)
        cond = tuple(sorted(final_by_thread.get(tid, [])))
        per_thread.append((key, cond))
    mem_cond = tuple(sorted(final_by_thread.get(-1, [])))
    return (tuple(sorted(per_thread)), mem_cond)


def _interesting_conditions(program: Program):
    """Candidate final conditions: one value choice per load.

    A condition is a full assignment of each load to either 0 or 1 —
    the typical diy shape where the witness condition pins every
    observer register.
    """
    loads = [(tid, access.reg) for tid, thread in enumerate(program)
             for access in thread if access.kind == "R"]
    if not loads:
        return
    for values in itertools.product((0, 1), repeat=len(loads)):
        yield tuple(((tid, reg), val) for (tid, reg), val in zip(loads, values))


def _useful(program: Program) -> bool:
    """Filter degenerate programs: every thread touches shared data, at
    least one store and one load exist overall, and at least two
    distinct threads communicate."""
    kinds = {a.kind for t in program for a in t}
    if kinds != {"R", "W"}:
        return False
    # A thread that only loads locations nobody writes is noise.
    written = {a.addr for t in program for a in t if a.kind == "W"}
    for thread in program:
        touched = {a.addr for a in thread}
        if not touched & written:
            return False
    # Require cross-thread communication on some address.
    for addr in written:
        writers = {tid for tid, t in enumerate(program)
                   for a in t if a.kind == "W" and a.addr == addr}
        readers = {tid for tid, t in enumerate(program)
                   for a in t if a.kind == "R" and a.addr == addr}
        if readers - writers:
            return True
    return False


def generate_safe_tests(count: int, seed_names: str = "safe") -> List[LitmusTest]:
    """Generate ``count`` unique SC-forbidden ("safe") litmus tests."""
    found: List[LitmusTest] = []
    seen: Set[Tuple] = set()
    addrs = ("x", "y")

    shapes: List[Tuple[int, ...]] = [(2, 2), (2, 3), (3, 2), (1, 2, 2), (2, 2, 2)]
    for shape in shapes:
        if len(found) >= count:
            break
        thread_patterns = [list(_access_patterns(addrs, length)) for length in shape]
        for combo in itertools.product(*thread_patterns):
            if len(found) >= count:
                break
            program = _assign_registers(combo)
            if not _useful(program):
                continue
            outcomes = None
            for final in _interesting_conditions(program):
                canon = _canonical(program, final)
                if canon in seen:
                    continue
                if outcomes is None:
                    outcomes = sc_outcomes(program)
                values_possible = any(
                    all(dict(o).get(key) == val for key, val in final)
                    for o in outcomes)
                if values_possible:
                    continue  # SC-observable: not a "safe" test
                seen.add(canon)
                name = f"{seed_names}{len(found) + 1:03d}"
                found.append(LitmusTest(
                    name, program, final,
                    comment="diy-style generated SC-forbidden outcome"))
                if len(found) >= count:
                    break
    if len(found) < count:
        raise RuntimeError(f"generator produced only {len(found)}/{count} tests")
    return found
