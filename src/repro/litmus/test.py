"""Litmus test representation and the standard text format.

A litmus test is a small concurrent program plus a *final condition* —
a conjunction of register equalities describing one outcome of interest
(paper section 2). Whether that outcome is permitted is decided against
a memory model; here labels come from the SC/TSO reference enumerators.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import LitmusError
from ..mcm import sc_outcomes, tso_outcomes
from ..mcm.events import Access, Outcome, Program


@dataclass
class LitmusTest:
    """A litmus test: threads of accesses + a final condition."""

    name: str
    program: Program
    #: conjunction of (thread, register) == value
    final: Tuple[Tuple[Tuple[int, str], int], ...]
    comment: str = ""

    # ------------------------------------------------------------------
    def addresses(self) -> List[str]:
        seen: List[str] = []
        for thread in self.program:
            for access in thread:
                if access.kind != "F" and access.addr not in seen:
                    seen.append(access.addr)
        return seen

    def loads(self) -> List[Tuple[int, int, Access]]:
        """(thread, index, access) for every load."""
        out = []
        for tid, thread in enumerate(self.program):
            for idx, access in enumerate(thread):
                if access.kind == "R":
                    out.append((tid, idx, access))
        return out

    def num_instructions(self) -> int:
        return sum(len(t) for t in self.program)

    # ------------------------------------------------------------------
    def outcome_matches(self, outcome: Outcome) -> bool:
        """Does a reference-model outcome satisfy the final condition?"""
        values = dict(outcome)
        return all(values.get(key) == val for key, val in self.final)

    def permitted_under_sc(self) -> bool:
        return any(self.outcome_matches(o) for o in sc_outcomes(self.program))

    def permitted_under_tso(self) -> bool:
        return any(self.outcome_matches(o) for o in tso_outcomes(self.program))

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Render in a compact litmus-style text format."""
        lines = [f"RISCV {self.name}"]
        if self.comment:
            lines.append(f'"{self.comment}"')
        lines.append("{}")
        width = max(len(self.program), 1)
        columns: List[List[str]] = []
        for tid, thread in enumerate(self.program):
            col = [f"P{tid}"]
            for access in thread:
                if access.kind == "W":
                    col.append(f"st {access.addr} {access.value}")
                elif access.kind == "F":
                    col.append("fence")
                else:
                    col.append(f"ld {access.reg} {access.addr}")
            columns.append(col)
        height = max(len(c) for c in columns)
        for col in columns:
            col.extend([""] * (height - len(col)))
        for row in range(height):
            lines.append(" | ".join(f"{columns[c][row]:<12}" for c in range(width)) + " ;")
        cond = " /\\ ".join(
            (f"{reg}={val}" if tid == -1 else f"{tid}:{reg}={val}")
            for (tid, reg), val in self.final)
        lines.append(f"exists ({cond})")
        return "\n".join(lines)


_COND_RE = re.compile(r"(?:(\d+):)?(\w+)\s*=\s*(\d+)")


def parse_litmus(text: str) -> LitmusTest:
    """Parse the format produced by :meth:`LitmusTest.format`."""
    lines = [line.rstrip() for line in text.strip().splitlines() if line.strip()]
    if not lines or not lines[0].startswith("RISCV"):
        raise LitmusError("litmus test must start with 'RISCV <name>'")
    name = lines[0].split(None, 1)[1].strip()
    comment = ""
    index = 1
    if index < len(lines) and lines[index].startswith('"'):
        comment = lines[index].strip('"')
        index += 1
    if index < len(lines) and lines[index].strip() == "{}":
        index += 1
    body: List[List[str]] = []
    final: Optional[Tuple] = None
    for line in lines[index:]:
        if line.startswith("exists"):
            conds = _COND_RE.findall(line)
            if not conds:
                raise LitmusError("empty final condition")
            final = tuple(((int(t) if t else -1, reg), int(val))
                          for t, reg, val in conds)
            continue
        if line.endswith(";"):
            body.append([cell.strip() for cell in line[:-1].split("|")])
    if final is None:
        raise LitmusError("litmus test has no 'exists' condition")
    if not body:
        raise LitmusError("litmus test has no program body")
    num_threads = len(body[0])
    threads: List[List[Access]] = [[] for _ in range(num_threads)]
    start_row = 1 if all(cell.startswith("P") for cell in body[0] if cell) else 0
    for row in body[start_row:]:
        for tid, cell in enumerate(row):
            if not cell:
                continue
            parts = cell.split()
            if parts[0] == "st":
                threads[tid].append(Access("W", parts[1], value=int(parts[2])))
            elif parts[0] == "ld":
                threads[tid].append(Access("R", parts[2], reg=parts[1]))
            elif parts[0] == "fence":
                threads[tid].append(Access("F", "-"))
            else:
                raise LitmusError(f"unknown litmus instruction {cell!r}")
    return LitmusTest(name, tuple(tuple(t) for t in threads), final, comment)
