"""SVA templates (paper Fig. 4 and sections 4.2.4 / 4.3.3 / 4.3.6).

Every rtl2uspec HBI hypothesis is instantiated from one of the
templates here, as a monitor circuit over the formal design variant:

* **A0** (Fig. 4a): instruction type ``op`` never updates state ``s``
  while occupying s's stage — a *failed* proof marks ``s`` as updated on
  behalf of ``op``.
* **A1** (Fig. 4b): instructions of type ``op`` make forward progress
  through a stage (discharged as bounded-eventually; see DESIGN.md).
* **Ordering** (4.3.1/4.3.2): i0's update of s0 happens strictly before
  i1's update of s1, given a reference order (program order: two PCs on
  the same core with pc0 < pc1 — in-order fetch makes the numeric order
  the program order for straight-line code).
* **Req-Snd / Req-Rec / Req-Proc** (4.3.3): the three-step decomposition
  for orderings through a remote resource's request-response interface.
* **Attribution** (4.3.4/6.1): every request on a remote interface is
  attributable to a supplied instruction encoding — the soundness
  precondition of the remote monitors, and the check that exposes the
  paper's section-6.1 decoder bug.

Update events use the *drive* convention: an update of ``s`` happens in
the cycle its new value is being driven (committed on the closing clock
edge), attributed to the instruction one stage earlier in the PCR array
(``PCR[stage(s)-1]``; the IM_PC for stage 0). This is the same
``$past``-comparison abstraction the paper's templates use, shifted by
the uniform one-cycle stage latency of the full-design DFG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import PropertyError
from ..core.metadata import DesignMetadata, InstructionEncoding, RequestResponseInterface
from ..formal import SafetyProblem
from ..netlist import Const, Netlist
from .monitor import MonitorContext


@dataclass(frozen=True)
class InstrSpec:
    """One tracked instruction in a hypothesis: which core it runs on
    and its type (``None`` = any supplied encoding, the relaxed form of
    the section-6.2 optimization)."""

    core: int
    enc: Optional[InstructionEncoding]

    def label(self) -> str:
        return f"c{self.core}.{self.enc.name if self.enc else 'any'}"


@dataclass(frozen=True)
class EventSpec:
    """An update event: state element + its (renumbered) DFG stage.

    ``kind`` selects the attribution/timestamp scheme:

    * ``local`` — core-local state: the update commits on the clock edge
      that ends the driving instruction's residency in ``stage - 1``
      (stage-exit timestamp, observed as ``PCR[stage-1] == pc`` together
      with the PCR advancing). Using the stage-exit edge instead of a
      raw value-change makes the event observable even for value-silent
      writes (two identical adjacent instructions), and collapses all of
      an instruction's same-stage updates onto one timestamp — which is
      why the number of structural SVAs scales with pipeline stages
      rather than state elements (paper section 4.3.3).
    * ``resource`` — the remote resource array itself: the update happens
      in the cycle the instruction's request is processed (one cycle
      after acceptance).
    * ``shared`` — interface-internal shared state (arbiter, request
      buffers): updated in the cycle the request is accepted.
    """

    state: str
    stage: int
    kind: str = "local"  # "local" | "resource" | "shared"

    @property
    def remote(self) -> bool:
        return self.kind in ("resource", "shared")


class SvaFactory:
    """Builds :class:`SafetyProblem` instances over the formal design."""

    #: subclasses set this so every problem records its base netlist,
    #: letting the engine bit-blast the design once per base and extend
    #: it with each monitor's delta (compose mode)
    share_base = False

    def __init__(self, base: Netlist, metadata: DesignMetadata):
        self.base = base
        self.md = metadata
        if metadata.interfaces:
            self.iface: Optional[RequestResponseInterface] = metadata.interfaces[0]
        else:
            self.iface = None

    # ------------------------------------------------------------------
    # Shared construction helpers
    # ------------------------------------------------------------------
    def _ctx(self, name: str) -> MonitorContext:
        return MonitorContext(self.base, name, reset=self.md.reset,
                              share_base=self.share_base)

    def _module_assumes(self, ctx: MonitorContext) -> None:
        """Hook for compositional subclasses: environment assumptions a
        module-scoped progress proof needs (the assume half of an
        assume-guarantee pair).  The monolithic factory needs none —
        the whole environment is in the netlist."""

    def _pcr(self, ctx: MonitorContext, core: int, index: int) -> str:
        """PCR[index] for a core; index -1 is the IM_PC; indexes past the
        array are virtual (delayed copies of the last PCR)."""
        md = self.md
        if index < -1:
            raise PropertyError(f"no PCR at index {index}")
        if index == -1:
            return md.core_signal(md.im_pc, core)
        if index < len(md.pcr):
            return md.core_signal(md.pcr[index], core)
        sig = md.core_signal(md.pcr[-1], core)
        for _ in range(index - len(md.pcr) + 1):
            sig = ctx.past(sig)
        return sig

    def _track_instruction(self, ctx: MonitorContext, spec: InstrSpec, tag: str):
        """Create pc/i symbolic constants with P0/P2/P3 assumptions;
        returns (pc_sym, instr_sym, dx_occupied)."""
        md = self.md
        pcr0 = self._pcr(ctx, spec.core, 0)
        ifr = md.core_signal(md.ifr, spec.core)
        pc_width = ctx.width_of(pcr0)
        ifr_width = ctx.width_of(ifr)
        pc_sym = ctx.symbolic_const(f"pc{tag}", pc_width)
        instr_sym = ctx.symbolic_const(f"i{tag}", ifr_width)
        occupied = ctx.assume_single_interval(pcr0, pc_sym)          # P0
        ctx.add_assume(ctx.implies(occupied, ctx.eq(ifr, instr_sym)))  # P2
        ctx.add_assume(self._encoding_assume(ctx, instr_sym, spec.enc))  # P3
        return pc_sym, instr_sym, occupied

    def _encoding_assume(self, ctx: MonitorContext, instr_sym: str,
                         enc: Optional[InstructionEncoding]) -> str:
        if enc is not None:
            return ctx.matches_encoding(instr_sym, enc.match, enc.mask)
        any_match = [ctx.matches_encoding(instr_sym, e.match, e.mask)
                     for e in self.md.encodings]
        return ctx.or_(*any_match)

    def _assume_program_order(self, ctx: MonitorContext, spec0: InstrSpec,
                              spec1: InstrSpec, pc0: str, pc1: str) -> None:
        """Reference order: same-core program order = fetch-address order
        for straight-line code."""
        if spec0.core != spec1.core:
            raise PropertyError("program order requires a same-core pair")
        ctx.add_assume(ctx.lt(pc0, pc1))

    def _state_drive_event(self, ctx: MonitorContext, state: str) -> str:
        """Drive-convention change event for a register or array."""
        netlist = ctx.netlist
        if state in netlist.memories:
            return ctx.mem_write_drive(state)
        dff = None
        for candidate in netlist.dffs.values():
            if candidate.q == state:
                dff = candidate
                break
        if dff is None:
            raise PropertyError(f"state element {state!r} is neither a DFF nor a memory")
        return ctx.ne(dff.d, dff.q)

    def _local_update_event(self, ctx: MonitorContext, spec: InstrSpec,
                            pc_sym: str, event: EventSpec) -> str:
        """Stage-exit timestamp: the instruction's updates of stage-k
        state commit on the edge that ends its residency in stage k-1,
        observed as the (unique-valued) PCR advancing away from its pc."""
        driver_pcr = self._pcr(ctx, spec.core, event.stage - 1)
        attributed = ctx.eq(driver_pcr, pc_sym)
        advancing = self._state_drive_event(ctx, driver_pcr)
        return ctx.and_(attributed, advancing)

    def _remote_update_event(self, ctx: MonitorContext, spec: InstrSpec,
                             pc_sym: str, event: EventSpec) -> str:
        """Interface-attributed events: request acceptance for shared
        interface-internal state, request processing (one cycle later)
        for the resource array itself."""
        if self.iface is None:
            raise PropertyError("design metadata declares no request-response interface")
        sent = ctx.and_(
            ctx.eq(self._pcr(ctx, spec.core, 0), pc_sym),
            self.md.core_signal(self.iface.core_req_sent, spec.core),
        )
        if event.kind == "shared":
            return sent
        return ctx.past(sent)

    def _update_event(self, ctx: MonitorContext, spec: InstrSpec,
                      pc_sym: str, event: EventSpec) -> str:
        if event.remote:
            return self._remote_update_event(ctx, spec, pc_sym, event)
        return self._local_update_event(ctx, spec, pc_sym, event)

    # ------------------------------------------------------------------
    # Intra-instruction templates (Fig. 4)
    # ------------------------------------------------------------------
    def never_updates(self, spec: InstrSpec, event: EventSpec,
                      name: Optional[str] = None) -> SafetyProblem:
        """A0: instructions of this type never update ``event.state``."""
        ctx = self._ctx(name or f"a0[{spec.label()}][{event.state}]")
        pc_sym, _instr, _occ = self._track_instruction(ctx, spec, "0")
        # A0 asks *whether* s is ever updated on op's behalf, so it uses
        # the paper's value-change form directly (Fig. 4a: s == $past(s))
        # attributed to the driving stage's PCR.
        if event.remote:
            iface = self.iface
            if iface is None:
                raise PropertyError("design metadata declares no request-response interface")
            valid = self.md.core_signal(iface.core_req_valid, spec.core)
            occupied = ctx.eq(self._pcr(ctx, spec.core, 0), pc_sym)
            ev = ctx.and_(occupied, valid)
        else:
            driver_pcr = self._pcr(ctx, spec.core, event.stage - 1)
            attributed = ctx.eq(driver_pcr, pc_sym)
            ev = ctx.and_(attributed, self._state_drive_event(ctx, event.state))
        ctx.add_assert(ctx.not_(ev))
        return ctx.problem()

    def progress(self, spec: InstrSpec, stage: int, horizon: int,
                 name: Optional[str] = None) -> SafetyProblem:
        """A1: instructions of this type spend at most ``horizon`` cycles
        occupying ``stage`` (bounded forward progress)."""
        ctx = self._ctx(name or f"a1[{spec.label()}][s{stage}]")
        pc_sym, _instr, _occ0 = self._track_instruction(ctx, spec, "0")
        self._module_assumes(ctx)
        pcr = self._pcr(ctx, spec.core, stage)
        occupied = ctx.eq(pcr, pc_sym)
        width = max(4, horizon.bit_length() + 1)
        count = ctx.counter(enable=occupied, clear=Const(1, 0), width=width)
        ctx.add_assert(ctx.lt(count, Const(width, horizon)))
        return ctx.problem()

    # ------------------------------------------------------------------
    # Inter-instruction ordering template (4.3.1 / 4.3.2 / 4.3.5)
    # ------------------------------------------------------------------
    def ordering(self, spec0: InstrSpec, event0: EventSpec,
                 spec1: InstrSpec, event1: EventSpec,
                 reference: Optional[str] = "po",
                 inverted: bool = False,
                 name: Optional[str] = None) -> SafetyProblem:
        """i0's update of s0 happens strictly before i1's update of s1.

        ``inverted`` checks the direction *inconsistent* with the
        reference order (the second round of section 4.3.1).
        """
        direction = "inv" if inverted else "fwd"
        label = name or (f"order[{spec0.label()}:{event0.state}->"
                         f"{spec1.label()}:{event1.state}][{direction}]")
        ctx = self._ctx(label)
        pc0, _i0, _o0 = self._track_instruction(ctx, spec0, "0")
        pc1, _i1, _o1 = self._track_instruction(ctx, spec1, "1")
        if reference == "po":
            self._assume_program_order(ctx, spec0, spec1, pc0, pc1)
        elif reference is not None:
            raise PropertyError(f"unknown reference order {reference!r}")
        ev0 = self._update_event(ctx, spec0, pc0, event0)
        ev1 = self._update_event(ctx, spec1, pc1, event1)
        if inverted:
            ev0, ev1 = ev1, ev0
        ctx.add_assert(ctx.implies(ev1, ctx.seen_strictly_before(ev0)))
        return ctx.problem()

    # ------------------------------------------------------------------
    # Remote-interface templates (4.3.3)
    # ------------------------------------------------------------------
    def req_snd(self, spec0: InstrSpec, spec1: InstrSpec,
                inverted: bool = False, name: Optional[str] = None) -> SafetyProblem:
        """Req-Snd: same-core requests are sent consistent with PO."""
        if self.iface is None:
            raise PropertyError("no request-response interface in metadata")
        label = name or f"req-snd[{spec0.label()},{spec1.label()}]"
        ctx = self._ctx(label)
        pc0, _i0, _o0 = self._track_instruction(ctx, spec0, "0")
        pc1, _i1, _o1 = self._track_instruction(ctx, spec1, "1")
        self._assume_program_order(ctx, spec0, spec1, pc0, pc1)
        sent0 = ctx.and_(ctx.eq(self._pcr(ctx, spec0.core, 0), pc0),
                         self.md.core_signal(self.iface.core_req_sent, spec0.core))
        sent1 = ctx.and_(ctx.eq(self._pcr(ctx, spec1.core, 0), pc1),
                         self.md.core_signal(self.iface.core_req_sent, spec1.core))
        if inverted:
            sent0, sent1 = sent1, sent0
        ctx.add_assert(ctx.implies(sent1, ctx.seen_strictly_before(sent0)))
        return ctx.problem()

    def req_rec(self, core: int, name: Optional[str] = None) -> SafetyProblem:
        """Req-Rec: the resource receives core ``core``'s requests in the
        order (and here, the cycle) they were sent."""
        if self.iface is None:
            raise PropertyError("no request-response interface in metadata")
        ctx = self._ctx(name or f"req-rec[c{core}]")
        iface = self.iface
        sent = self.md.core_signal(iface.core_req_sent, core)
        core_id_width = ctx.width_of(iface.mem_req_core)
        received = ctx.and_(iface.mem_req_valid,
                            ctx.eq(iface.mem_req_core, Const(core_id_width, core)))
        ctx.add_assert(ctx.implies(sent, received))
        ctx.add_assert(ctx.implies(received, sent))
        return ctx.problem()

    def req_proc(self, core: int, name: Optional[str] = None) -> SafetyProblem:
        """Req-Proc: the resource processes core ``core``'s requests in
        the order received (here: exactly one cycle after reception)."""
        if self.iface is None:
            raise PropertyError("no request-response interface in metadata")
        ctx = self._ctx(name or f"req-proc[c{core}]")
        iface = self.iface
        core_id_width = ctx.width_of(iface.mem_req_core)
        received = ctx.and_(iface.mem_req_valid,
                            ctx.eq(iface.mem_req_core, Const(core_id_width, core)))
        processing = ctx.and_(iface.proc_valid,
                              ctx.eq(iface.proc_core, Const(ctx.width_of(iface.proc_core), core)))
        ctx.add_assert(ctx.implies(processing, ctx.past(received)))
        ctx.add_assert(ctx.implies(ctx.past(received), processing))
        return ctx.problem()

    def functional_correctness(self, name: Optional[str] = None) -> SafetyProblem:
        """Interface sanity: the resource's read response equals the
        array content at the processed address — the memory functional
        correctness the paper *assumes* (section 4.3.6), discharged here
        as an explicit SVA. Refuted e.g. by the stale-read memory bug
        variant (a load can miss an in-flight write)."""
        if self.iface is None:
            raise PropertyError("no request-response interface in metadata")
        iface = self.iface
        if iface.resp_valid is None or iface.resp_data is None:
            raise PropertyError("interface metadata declares no response signals")
        ctx = self._ctx(name or "functional[mem]")
        mem = ctx.netlist.memories.get(iface.resource)
        if mem is None:
            raise PropertyError(f"resource {iface.resource!r} is not a memory array")
        current = ctx._fresh("memval", mem.width)
        ctx.netlist.add_read_port(iface.resource, iface.proc_addr, current)
        reading = ctx.and_(iface.proc_valid, ctx.not_(iface.proc_write))
        ctx.add_assert(ctx.implies(ctx.and_(iface.resp_valid, reading),
                                   ctx.eq(iface.resp_data, current)))
        return ctx.problem()

    def attribution(self, core: int, name: Optional[str] = None) -> SafetyProblem:
        """Attribution soundness: every request core ``core`` issues on
        the interface belongs to a supplied instruction encoding of the
        matching kind. Refuted on the buggy multi-V-scale by a trace in
        which an undefined store encoding updates memory (section 6.1).
        """
        if self.iface is None:
            raise PropertyError("no request-response interface in metadata")
        ctx = self._ctx(name or f"attr[c{core}]")
        iface = self.iface
        md = self.md
        ifr = md.core_signal(md.ifr, core)
        valid = md.core_signal(iface.core_req_valid, core)
        write = md.core_signal(iface.core_req_write, core)
        write_match = [ctx.matches_encoding(ifr, e.match, e.mask)
                       for e in md.encodings if e.is_write]
        read_match = [ctx.matches_encoding(ifr, e.match, e.mask)
                      for e in md.encodings if e.is_read]
        if write_match:
            ctx.add_assert(ctx.implies(ctx.and_(valid, write), ctx.or_(*write_match)))
        if read_match:
            ctx.add_assert(ctx.implies(ctx.and_(valid, ctx.not_(write)),
                                       ctx.or_(*read_match)))
        return ctx.problem()
