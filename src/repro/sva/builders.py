"""Top-level, picklable SVA problem builders.

The synthesizer used to capture builders as closures
(``lambda: factory.ordering(...)``), which cannot cross a process
boundary.  Obligations instead name a builder from this registry and
carry its positional arguments (frozen :class:`InstrSpec` /
:class:`EventSpec` dataclasses, ints — all picklable), so a worker
process can reconstruct the :class:`SafetyProblem` from the shared
:class:`SvaFactory` shipped once at pool initialization.

Every builder has the uniform shape ``build(factory, *args) ->
SafetyProblem`` and is a plain module-level function, keeping the
``(builder-name, args)`` pair picklable without pickling the factory
per obligation.
"""

from __future__ import annotations


def never_updates(factory, spec, event):
    """A0 (Fig. 4a): ``spec`` never updates ``event.state``."""
    return factory.never_updates(spec, event)


def progress(factory, spec, stage, horizon):
    """A1 (Fig. 4b): bounded forward progress through ``stage``."""
    return factory.progress(spec, stage, horizon)


def ordering(factory, spec0, event0, spec1, event1, inverted):
    """Inter-instruction ordering SVA (4.3.1/4.3.2/4.3.5)."""
    return factory.ordering(spec0, event0, spec1, event1, inverted=inverted)


def req_snd(factory, spec0, spec1):
    """Req-Snd interface decomposition step (4.3.3)."""
    return factory.req_snd(spec0, spec1)


def req_rec(factory, core):
    """Req-Rec interface decomposition step (4.3.3)."""
    return factory.req_rec(core)


def req_proc(factory, core):
    """Req-Proc interface decomposition step (4.3.3)."""
    return factory.req_proc(core)


def attribution(factory, core):
    """Attribution soundness SVA (4.3.4 / 6.1)."""
    return factory.attribution(core)


def functional_correctness(factory):
    """Memory functional-correctness sanity SVA (4.3.6)."""
    return factory.functional_correctness()


def interface_service(factory, core):
    """Arbiter-side bounded-service guarantee (compose mode only: the
    factory must be a :class:`repro.sva.compose.ComposedSvaFactory`)."""
    return factory.interface_service(core)


#: builder-name -> callable registry used by obligations and workers
BUILDERS = {
    "never_updates": never_updates,
    "progress": progress,
    "ordering": ordering,
    "req_snd": req_snd,
    "req_rec": req_rec,
    "req_proc": req_proc,
    "attribution": attribution,
    "functional_correctness": functional_correctness,
    "interface_service": interface_service,
}
