"""SVA-style property construction: monitors + the paper's templates."""

from .monitor import MonitorContext
from .templates import EventSpec, InstrSpec, SvaFactory

__all__ = ["MonitorContext", "SvaFactory", "InstrSpec", "EventSpec"]
