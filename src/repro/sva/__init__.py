"""SVA-style property construction: monitors + the paper's templates.

:mod:`repro.sva.builders` exposes the templates as top-level picklable
builder callables for the parallel discharge scheduler.
"""

from .builders import BUILDERS
from .monitor import MonitorContext
from .templates import EventSpec, InstrSpec, SvaFactory
from .compose import ComposedSvaFactory

__all__ = ["MonitorContext", "SvaFactory", "ComposedSvaFactory",
           "InstrSpec", "EventSpec", "BUILDERS"]
