"""Monitor-circuit construction over a copied netlist.

The paper embeds HBI hypotheses in SystemVerilog Assertions evaluated by
JasperGold (sections 4.2.4, 4.3.3). Here each hypothesis becomes a small
synchronous monitor circuit — extra cells, registers and symbolic-
constant inputs grafted onto a copy of the design — whose 1-bit
``assume``/``assert`` outputs feed the BMC/k-induction engine.

:class:`MonitorContext` is the construction toolkit: combinational
operators, monitor state registers, ``$past``/sticky/changed helpers,
occupancy automata, and update-event detectors for registers and memory
arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..errors import PropertyError
from ..netlist import Const, Netlist
from ..formal import SafetyProblem

Ref = Union[str, Const]


class MonitorContext:
    """Builds one property's monitor over a private copy of the design."""

    def __init__(self, base: Netlist, name: str = "property",
                 reset: str = "reset", share_base: bool = False):
        self.netlist = base.copy(f"{base.name}${name}")
        self.name = name
        self.reset = reset
        #: with ``share_base`` the emitted problem records ``base`` so
        #: the engine can bit-blast it once and extend per monitor
        self._base = base if share_base else None
        self.assume_wires: List[str] = []
        self.assert_wires: List[str] = []
        self.frozen_inputs: List[str] = []
        self._unique = 0
        self._past_cache: Dict[str, str] = {}
        self._mem_event_cache: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def _fresh(self, hint: str, width: int) -> str:
        self._unique += 1
        name = f"$mon${self.name}${hint}{self._unique}"
        self.netlist.add_wire(name, width)
        return name

    def width_of(self, ref: Ref) -> int:
        return self.netlist.width_of(ref)

    # ------------------------------------------------------------------
    # Symbolic constants and free inputs
    # ------------------------------------------------------------------
    def symbolic_const(self, hint: str, width: int) -> str:
        """A fresh input held constant across all timeframes (e.g. pc0)."""
        self._unique += 1
        name = f"$sym${self.name}${hint}{self._unique}"
        self.netlist.add_input(name, width)
        self.frozen_inputs.append(name)
        return name

    # ------------------------------------------------------------------
    # Combinational builders (each returns a wire name)
    # ------------------------------------------------------------------
    def _binop(self, op: str, a: Ref, b: Ref, out_width: int, hint: str) -> str:
        out = self._fresh(hint, out_width)
        self.netlist.add_cell(op, [a, b], out)
        return out

    def eq(self, a: Ref, b: Ref) -> str:
        return self._binop("eq", a, b, 1, "eq")

    def ne(self, a: Ref, b: Ref) -> str:
        return self._binop("ne", a, b, 1, "ne")

    def lt(self, a: Ref, b: Ref) -> str:
        return self._binop("lt", a, b, 1, "lt")

    def and_(self, *refs: Ref) -> str:
        refs = [r for r in refs]
        if not refs:
            raise PropertyError("and_ needs at least one operand")
        acc = refs[0]
        for other in refs[1:]:
            acc = self._binop("and", acc, other, 1, "and")
        return acc if isinstance(acc, str) else self.buf(acc)

    def or_(self, *refs: Ref) -> str:
        refs = [r for r in refs]
        if not refs:
            raise PropertyError("or_ needs at least one operand")
        acc = refs[0]
        for other in refs[1:]:
            acc = self._binop("or", acc, other, 1, "or")
        return acc if isinstance(acc, str) else self.buf(acc)

    def not_(self, a: Ref) -> str:
        out = self._fresh("not", 1)
        self.netlist.add_cell("not", [a], out)
        return out

    def implies(self, a: Ref, b: Ref) -> str:
        """a -> b  ==  !a || b"""
        return self.or_(self.not_(a), b)

    def mux(self, sel: Ref, when_true: Ref, when_false: Ref, width: int = 1) -> str:
        out = self._fresh("mux", width)
        self.netlist.add_cell("mux", [sel, when_true, when_false], out)
        return out

    def buf(self, ref: Ref, width: Optional[int] = None) -> str:
        width = width if width is not None else self.width_of(ref)
        out = self._fresh("buf", width)
        self.netlist.add_cell("zext", [ref], out)
        return out

    def const(self, value: int, width: int) -> Const:
        return Const(width, value)

    def slice_(self, ref: Ref, lo: int, hi: int) -> str:
        out = self._fresh("slice", hi - lo + 1)
        self.netlist.add_cell("slice", [ref], out, attrs={"lo": lo, "hi": hi})
        return out

    def matches_encoding(self, word_ref: Ref, match: int, mask: int) -> str:
        """(word & mask) == match"""
        width = self.width_of(word_ref)
        masked = self._binop("and", word_ref, Const(width, mask), width, "mask")
        return self.eq(masked, Const(width, match))

    # ------------------------------------------------------------------
    # Sequential builders
    # ------------------------------------------------------------------
    def register(self, d: Ref, init: int = 0, width: int = 1, hint: str = "reg") -> str:
        """A monitor state register; returns its Q wire."""
        q = self._fresh(hint, width)
        self._unique += 1
        self.netlist.add_dff(f"$mondff${self.name}${hint}{self._unique}", d, q, width, init)
        return q

    def past(self, ref: Ref) -> str:
        """$past(ref): the value one cycle ago (0 at cycle 0)."""
        if isinstance(ref, str) and ref in self._past_cache:
            return self._past_cache[ref]
        width = self.width_of(ref)
        q = self.register(ref, init=0, width=width, hint="past")
        if isinstance(ref, str):
            self._past_cache[ref] = q
        return q

    def sticky(self, cond: Ref, hint: str = "sticky") -> str:
        """True from the first cycle ``cond`` holds, onwards (inclusive)."""
        q = self._fresh(hint, 1)
        d = self.or_(q, cond)
        self._unique += 1
        self.netlist.add_dff(f"$mondff${self.name}${hint}{self._unique}", d, q, 1, 0)
        # q is the registered "seen strictly before"; inclusive = q || cond
        return self.or_(q, cond)

    def seen_strictly_before(self, cond: Ref, hint: str = "seenpast") -> str:
        """True iff ``cond`` held in some strictly earlier cycle."""
        q = self._fresh(hint, 1)
        d = self.or_(q, cond)
        self._unique += 1
        self.netlist.add_dff(f"$mondff${self.name}${hint}{self._unique}", d, q, 1, 0)
        return q

    def changed(self, name: str) -> str:
        """Arrival-convention update event for a register: its value this
        cycle differs from the previous cycle (i.e. it was written on the
        preceding clock edge)."""
        if name not in self.netlist.wires:
            raise PropertyError(f"changed(): unknown wire {name!r}")
        return self.ne(name, self.past(name))

    def counter(self, enable: Ref, clear: Ref, width: int = 6, hint: str = "cnt") -> str:
        """Saturating counter: +1 while enabled, reset to 0 on clear."""
        q = self._fresh(hint, width)
        inc = self._binop("add", q, Const(width, 1), width, "inc")
        at_max = self.eq(q, Const(width, (1 << width) - 1))
        held = self.mux(at_max, q, inc, width)
        stepped = self.mux(enable, held, q, width)
        d = self.mux(clear, Const(width, 0), stepped, width)
        self._unique += 1
        self.netlist.add_dff(f"$mondff${self.name}${hint}{self._unique}", d, q, width, 0)
        return q

    # ------------------------------------------------------------------
    # Memory-array update events
    # ------------------------------------------------------------------
    def mem_write_drive(self, mem_name: str, value_changing: bool = True) -> str:
        """1-bit: some cell of the array is being written this cycle
        (drive convention). With ``value_changing``, writes that store
        the value already present do not count as updates."""
        cache_key = f"{mem_name}|{value_changing}"
        if cache_key in self._mem_event_cache:
            return self._mem_event_cache[cache_key]
        mem = self.netlist.memories.get(mem_name)
        if mem is None:
            raise PropertyError(f"no memory named {mem_name!r}")
        events = []
        for port in mem.write_ports:
            fired = port.enable
            if value_changing:
                current = self._fresh("rdold", mem.width)
                self.netlist.add_read_port(mem_name, port.addr, current)
                differs = self.ne(current, port.data)
                fired = self.and_(fired, differs)
            events.append(fired)
        result = self.or_(*events) if events else self.buf(Const(1, 0))
        self._mem_event_cache[cache_key] = result
        return result

    def mem_update_arrival(self, mem_name: str) -> str:
        """Arrival-convention update event for an array: a changing write
        was driven on the preceding edge."""
        return self.past(self.mem_write_drive(mem_name))

    # ------------------------------------------------------------------
    # Assumption / assertion registration
    # ------------------------------------------------------------------
    def add_assume(self, ref: Ref) -> None:
        self.assume_wires.append(ref if isinstance(ref, str) else self.buf(ref))

    def add_assert(self, ref: Ref) -> None:
        self.assert_wires.append(ref if isinstance(ref, str) else self.buf(ref))

    # ------------------------------------------------------------------
    # Occupancy automaton (the paper's P0 assumption)
    # ------------------------------------------------------------------
    def assume_single_interval(self, pcr: str, pc_sym: str) -> str:
        """Assume ``pcr == pc_sym`` holds during exactly one contiguous
        interval of the trace (paper Fig. 4a, assumption P0). Returns the
        occupancy wire for reuse."""
        occupied = self.eq(pcr, pc_sym)
        ended = self.seen_strictly_before(
            self.and_(self.seen_strictly_before(occupied), self.not_(occupied)), hint="ended")
        # Trace is excluded if occupancy resumes after the interval ended.
        self.add_assume(self.not_(self.and_(ended, occupied)))
        return occupied

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------
    def problem(self) -> SafetyProblem:
        self.netlist.validate()
        return SafetyProblem(
            netlist=self.netlist,
            assume_wires=list(self.assume_wires),
            assert_wires=list(self.assert_wires),
            frozen_inputs=list(self.frozen_inputs),
            reset_input=self.reset,
            name=self.name,
            base=self._base,
        )
