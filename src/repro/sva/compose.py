"""Compositional SVA factory: per-module proofs with assume-guarantee
interfaces (ROADMAP item 5, RealityCheck-style).

Monolithic synthesis instantiates every monitor over the flattened
design, so each SVA pays for the whole multi-core netlist and N
identical cores cost N times one core.  :class:`ComposedSvaFactory`
instead builds each problem over the *module netlist* of the instance
that owns the referenced state:

* Core-local templates (A0/A1/ordering/Req-Snd/attribution) run on the
  standalone ``vscale_core`` elaboration with boundary inputs free.
  Free inputs over-approximate every behavior the composed design can
  drive, so module-level PROVEN verdicts are sound for the whole
  design.
* The one place the over-approximation bites — A1 forward progress
  depends on the arbiter eventually granting the core's memory request
  — is closed with an assume-guarantee pair: module problems *assume*
  bounded service of the request interface, and a matching
  ``interface_service`` obligation *asserts* the same bound on the
  arbiter's module netlist (the guarantee).  The round-robin arbiter
  grants one requester per cycle, so a core waits at most NCORES-1
  consecutive cycles; the assumption uses the bound NCORES, which the
  guarantee implies.
* Interface templates that genuinely span modules (Req-Rec, Req-Proc,
  memory functional correctness) delegate to a plain full-netlist
  factory — composition never weakens them.

Every problem carries its module netlist as :attr:`SafetyProblem.base`
(``share_base``): the engine bit-blasts each module once and extends
per monitor, and the scheduler dedupes isomorphic problems by
fingerprint, so N identical core instances cost one proof.  Problem
names are *canonicalized* (core index and concrete state collapsed to
the stage/kind the monitor actually observes) because monitor wire
names embed the problem name and would otherwise break fingerprint
equality.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.metadata import DesignMetadata
from ..errors import SynthesisError
from ..formal import SafetyProblem
from ..netlist import Const, HierNetlist
from .monitor import MonitorContext
from .templates import EventSpec, InstrSpec, SvaFactory


class ComposedSvaFactory(SvaFactory):
    """Builds module-scoped :class:`SafetyProblem` instances."""

    share_base = True

    def __init__(self, hier: HierNetlist, metadata: DesignMetadata):
        if not metadata.interfaces:
            raise SynthesisError(
                "compositional synthesis needs a request-response interface "
                "(the assume-guarantee pair is phrased on it)")
        #: full-design factory for the templates that span modules
        self.full = SvaFactory(hier.flat, metadata)
        self.hier = hier
        # The core instance prefix template comes from the IFR path
        # ("core_gen[{core}].core.inst_DX" -> "core_gen[{core}].core.").
        if "." not in metadata.ifr:
            raise SynthesisError(
                "compositional synthesis needs a hierarchical IFR path "
                "(a flat design has no module boundary to cut on)")
        self._core_prefix_t = metadata.ifr.rsplit(".", 1)[0] + "."
        core_inst = hier.instance_at(
            metadata.core_signal(self._core_prefix_t, 0))
        #: service bound W for the assume-guarantee pair: the round-robin
        #: arbiter serves each requester within #requesters cycles
        self.service_bound = len(hier.instances_of(core_inst.module))
        arb_inst = hier.find_instance(["core_req_valid", "core_req_ready"])
        if arb_inst is None:
            raise SynthesisError(
                "no arbiter instance (ports core_req_valid/core_req_ready) "
                "found: the bounded-service assumption would have no "
                "guarantee obligation backing it")
        self.arbiter = hier.module_netlist(arb_inst)
        super().__init__(hier.module_netlist(core_inst),
                         self._localized_metadata(metadata))

    # ------------------------------------------------------------------
    # Metadata / name localization
    # ------------------------------------------------------------------
    def _localized_metadata(self, md: DesignMetadata) -> DesignMetadata:
        """Rewrite the core-side metadata to module-local signal names
        (strip the instance prefix; resource-side names are untouched —
        module problems never reference them)."""
        prefix = self._core_prefix_t

        def strip(template: str) -> str:
            if template.startswith(prefix):
                return template[len(prefix):]
            return template

        iface = md.interfaces[0]
        local_iface = replace(
            iface,
            core_req_valid=strip(iface.core_req_valid),
            core_req_sent=strip(iface.core_req_sent),
            core_req_write=strip(iface.core_req_write),
            core_req_addr=strip(iface.core_req_addr),
            core_req_data=strip(iface.core_req_data))
        return replace(
            md,
            ifr=strip(md.ifr),
            pcr=[strip(p) for p in md.pcr],
            im_pc=strip(md.im_pc),
            interfaces=[local_iface],
            shared_prefixes=[])

    def _localize(self, state: str, core: int) -> str:
        prefix = self._core_prefix_t.format(core=core)
        if state.startswith(prefix):
            return state[len(prefix):]
        return state

    # ------------------------------------------------------------------
    # Canonicalized core-module templates
    # ------------------------------------------------------------------
    def never_updates(self, spec: InstrSpec, event: EventSpec,
                      name: Optional[str] = None) -> SafetyProblem:
        # The remote A0 monitor observes only the interface request
        # valid (neither the state nor its kind), so every remote state
        # collapses onto ONE canonical problem per encoding; local A0
        # states get their module-local name.
        if event.remote:
            canon = EventSpec("remote", event.stage, event.kind)
        else:
            canon = EventSpec(self._localize(event.state, spec.core),
                              event.stage, event.kind)
        return super().never_updates(spec, canon, name)

    def _canon_order_event(self, event: EventSpec) -> EventSpec:
        # Ordering monitors key on (stage, kind) only: local events
        # observe the stage's PCR, remote events the interface.
        if event.remote:
            return EventSpec(event.kind, event.stage, event.kind)
        return EventSpec(f"s{event.stage}", event.stage, event.kind)

    def ordering(self, spec0: InstrSpec, event0: EventSpec,
                 spec1: InstrSpec, event1: EventSpec,
                 reference: Optional[str] = "po",
                 inverted: bool = False,
                 name: Optional[str] = None) -> SafetyProblem:
        return super().ordering(
            spec0, self._canon_order_event(event0),
            spec1, self._canon_order_event(event1),
            reference=reference, inverted=inverted, name=name)

    def attribution(self, core: int, name: Optional[str] = None) -> SafetyProblem:
        # Decoder attribution is core-internal: one canonical problem
        # serves every core instance.
        return super().attribution(0, name=name or "attr[core]")

    # ------------------------------------------------------------------
    # Assume-guarantee pair for the request interface
    # ------------------------------------------------------------------
    def _module_assumes(self, ctx: MonitorContext) -> None:
        """Assumption side: the arbiter serves a pending request within
        ``service_bound`` cycles (discharged as the matching
        :meth:`interface_service` guarantee on the arbiter module)."""
        iface = self.iface
        valid = self.md.core_signal(iface.core_req_valid, 0)
        sent = self.md.core_signal(iface.core_req_sent, 0)
        unserved = ctx.and_(valid, ctx.not_(sent))
        width = max(2, self.service_bound.bit_length() + 1)
        # Reset cycles don't count against the bound: the arbiter's
        # priority pointer is frozen during reset, so the guarantee
        # (and hence this assumption) is phrased over non-reset cycles.
        clear = ctx.or_(ctx.not_(unserved), ctx.reset)
        wait = ctx.counter(enable=unserved, clear=clear,
                           width=width, hint="svc")
        ctx.add_assume(ctx.lt(wait, Const(width, self.service_bound)))

    def interface_service(self, core: int,
                          name: Optional[str] = None) -> SafetyProblem:
        """Guarantee side, proven on the arbiter module netlist: core
        ``core``'s request is never left unserved ``service_bound``
        consecutive cycles, even with adversarial competing requests
        (free inputs).  Refutation is a real composition bug — the
        assumption in the core-module problems would be unsound."""
        ctx = MonitorContext(self.arbiter, name or f"iface-service[c{core}]",
                             reset=self.md.reset, share_base=True)
        valid = ctx.slice_("core_req_valid", core, core)
        ready = ctx.slice_("core_req_ready", core, core)
        unserved = ctx.and_(valid, ctx.not_(ready))
        width = max(2, self.service_bound.bit_length() + 1)
        # Clear during reset, matching the assumption in
        # :meth:`_module_assumes`: while reset holds rr_ptr frozen the
        # arbiter may grant the same core repeatedly, and in the
        # composed design no core issues requests during reset anyway.
        clear = ctx.or_(ctx.not_(unserved), ctx.reset)
        streak = ctx.counter(enable=unserved, clear=clear,
                             width=width, hint="svc")
        ctx.add_assert(ctx.lt(streak, Const(width, self.service_bound)))
        return ctx.problem()

    # ------------------------------------------------------------------
    # Cross-module templates: delegate to the full design
    # ------------------------------------------------------------------
    def req_rec(self, core: int, name: Optional[str] = None) -> SafetyProblem:
        return self.full.req_rec(core, name)

    def req_proc(self, core: int, name: Optional[str] = None) -> SafetyProblem:
        return self.full.req_proc(core, name)

    def functional_correctness(self, name: Optional[str] = None) -> SafetyProblem:
        return self.full.functional_correctness(name)
