"""Shipped reference artifacts: the synthesized µspec model.

``multi_vscale.uarch`` is the output of a full rtl2uspec run on the
bundled multi-V-scale (regenerate with ``examples/full_verification.py``
or ``python -m repro synth``). Shipping it lets the litmus verifier,
examples and tests run instantly without repeating the minutes-long
synthesis, mirroring the paper's amortization argument (Fig. 6a).
"""

import os

from ...uspec import Model, parse_model

_MODELS_DIR = os.path.dirname(os.path.abspath(__file__))


def load_reference_model() -> Model:
    """Parse the shipped multi-V-scale µspec model."""
    path = os.path.join(_MODELS_DIR, "multi_vscale.uarch")
    with open(path, "r", encoding="utf-8") as handle:
        return parse_model(handle.read(), name="multi_vscale")


def load_unmerged_model() -> Model:
    """Parse the no-node-merging ablation model (section 4.4), emitted
    from the same proven HBIs as the reference model."""
    path = os.path.join(_MODELS_DIR, "multi_vscale_unmerged.uarch")
    with open(path, "r", encoding="utf-8") as handle:
        return parse_model(handle.read(), name="multi_vscale_unmerged")


__all__ = ["load_reference_model", "load_unmerged_model"]
