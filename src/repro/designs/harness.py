"""Simulation harness for the bundled multi-V-scale design.

Wraps :class:`repro.sim.Simulator` with program loading, reset
sequencing, and architectural-state accessors, so litmus tests and unit
tests can drive the processor at the ISA level.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import SimulationError
from ..sim import Simulator
from . import isa
from .loader import SIM_CONFIG, DesignConfig, load_design


class MultiVScaleSim:
    """An executable multi-V-scale: load programs, run, inspect state."""

    def __init__(self, config: DesignConfig = SIM_CONFIG):
        if config.formal:
            raise SimulationError(
                "the formal variant has no instruction memories; use a non-formal config")
        self.config = config
        self.netlist = load_design(config)
        self.sim = Simulator(self.netlist)
        self._programs: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_program(self, core: int, words: Sequence[int]) -> None:
        """Load instruction words at PC 0 of ``core``; the rest of the
        instruction memory is filled with NOPs."""
        if not 0 <= core < self.config.num_cores:
            raise SimulationError(f"core {core} out of range")
        depth = self.config.imem_depth
        if len(words) > depth:
            raise SimulationError(f"program of {len(words)} words exceeds imem depth {depth}")
        image = {addr: isa.NOP for addr in range(depth)}
        for addr, word in enumerate(words):
            image[addr] = word
        self.sim.load_memory(f"core_gen[{core}].imem_inst.mem", image)
        self._programs[core] = list(words)

    def load_data(self, values: Dict[int, int]) -> None:
        """Initialize shared data memory; keys are byte addresses
        (word-aligned), values the stored words."""
        image = {}
        for byte_addr, value in values.items():
            if byte_addr % 4:
                raise SimulationError(f"address {byte_addr:#x} is not word-aligned")
            image[byte_addr >> 2] = value
        self.sim.load_memory("the_mem.mem", image)

    def set_register(self, core: int, reg: int, value: int) -> None:
        """Pre-set an architectural register (litmus initial state)."""
        if reg == 0:
            if value != 0:
                raise SimulationError("x0 is hardwired to zero")
            return
        self.sim.mems[f"core_gen[{core}].core.regfile"][reg] = \
            value & ((1 << self.config.xlen) - 1)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def reset(self, cycles: int = 1) -> None:
        """Apply reset for ``cycles`` cycles then release it."""
        self.sim.set_input("reset", 1)
        self.sim.step(cycles)
        self.sim.set_input("reset", 0)

    def run(self, cycles: int) -> None:
        self.sim.step(cycles)

    def run_program(self, cycles: Optional[int] = None) -> None:
        """Reset and run long enough for every loaded program to retire.

        The bound is conservative: every instruction takes one cycle plus
        a worst-case arbiter stall of ``num_cores`` cycles, plus pipeline
        drain.
        """
        self.reset()
        if cycles is None:
            longest = max((len(p) for p in self._programs.values()), default=0)
            cycles = (longest + 4) * (self.config.num_cores + 1) + 8
        self.run(cycles)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def reg(self, core: int, reg: int) -> int:
        """Architectural register value."""
        if reg == 0:
            return 0
        return self.sim.mems[f"core_gen[{core}].core.regfile"][reg]

    def mem(self, byte_addr: int) -> int:
        """Shared-memory word at a byte address."""
        if byte_addr % 4:
            raise SimulationError(f"address {byte_addr:#x} is not word-aligned")
        return self.sim.mems["the_mem.mem"][byte_addr >> 2]

    def pc(self, core: int) -> int:
        return self.sim.peek(f"core_gen[{core}].core.PC_IF")
