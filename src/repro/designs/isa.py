"""RV32I instruction encoding helpers for the supported subset.

Used by the litmus-to-program compiler, the simulator harness, and the
tests. Only the instructions the multi-V-scale implements are encoded:
``lw``, ``sw``, ``addi``, ``add``, ``lui`` and ``nop``.
"""

from __future__ import annotations

from ..errors import ReproError

OPCODE_LOAD = 0b0000011
OPCODE_STORE = 0b0100011
OPCODE_OP_IMM = 0b0010011
OPCODE_OP = 0b0110011
OPCODE_LUI = 0b0110111

NOP = 0x00000013  # addi x0, x0, 0


def _check_reg(reg: int) -> int:
    if not 0 <= reg < 32:
        raise ReproError(f"register x{reg} out of range")
    return reg


def _imm12(value: int) -> int:
    if not -2048 <= value < 2048:
        raise ReproError(f"immediate {value} does not fit in 12 bits")
    return value & 0xFFF


def lw(rd: int, rs1: int, imm: int) -> int:
    """``lw rd, imm(rs1)``"""
    return (_imm12(imm) << 20) | (_check_reg(rs1) << 15) | (0b010 << 12) \
        | (_check_reg(rd) << 7) | OPCODE_LOAD


def sw(rs2: int, rs1: int, imm: int) -> int:
    """``sw rs2, imm(rs1)``"""
    imm = _imm12(imm)
    imm_hi = (imm >> 5) & 0x7F
    imm_lo = imm & 0x1F
    return (imm_hi << 25) | (_check_reg(rs2) << 20) | (_check_reg(rs1) << 15) \
        | (0b010 << 12) | (imm_lo << 7) | OPCODE_STORE


def sw_undefined(rs2: int, rs1: int, imm: int, funct3: int = 0b111) -> int:
    """A store-shaped encoding with an undefined width field — the
    instruction class behind the bug in paper section 6.1."""
    if funct3 == 0b010:
        raise ReproError("funct3=010 is the defined sw; pick an undefined width")
    imm = _imm12(imm)
    imm_hi = (imm >> 5) & 0x7F
    imm_lo = imm & 0x1F
    return (imm_hi << 25) | (_check_reg(rs2) << 20) | (_check_reg(rs1) << 15) \
        | ((funct3 & 0x7) << 12) | (imm_lo << 7) | OPCODE_STORE


def addi(rd: int, rs1: int, imm: int) -> int:
    """``addi rd, rs1, imm``"""
    return (_imm12(imm) << 20) | (_check_reg(rs1) << 15) | (0b000 << 12) \
        | (_check_reg(rd) << 7) | OPCODE_OP_IMM


def add(rd: int, rs1: int, rs2: int) -> int:
    """``add rd, rs1, rs2``"""
    return (_check_reg(rs2) << 20) | (_check_reg(rs1) << 15) | (0b000 << 12) \
        | (_check_reg(rd) << 7) | OPCODE_OP


def lui(rd: int, imm20: int) -> int:
    """``lui rd, imm20`` (upper-immediate, 20 bits)"""
    if not 0 <= imm20 < (1 << 20):
        raise ReproError(f"upper immediate {imm20} does not fit in 20 bits")
    return (imm20 << 12) | (_check_reg(rd) << 7) | OPCODE_LUI


def li(rd: int, value: int) -> int:
    """Load a small constant: ``addi rd, x0, value`` (12-bit range)."""
    return addi(rd, 0, value)


def decode_fields(word: int) -> dict:
    """Split an instruction word into its standard fields (for tests
    and counterexample pretty-printing)."""
    return {
        "opcode": word & 0x7F,
        "rd": (word >> 7) & 0x1F,
        "funct3": (word >> 12) & 0x7,
        "rs1": (word >> 15) & 0x1F,
        "rs2": (word >> 20) & 0x1F,
        "funct7": (word >> 25) & 0x7F,
    }


def disassemble(word: int) -> str:
    """Best-effort disassembly of a supported instruction word."""
    fields = decode_fields(word)
    opcode, funct3 = fields["opcode"], fields["funct3"]
    rd, rs1, rs2 = fields["rd"], fields["rs1"], fields["rs2"]
    if word == NOP:
        return "nop"
    if opcode == OPCODE_LOAD and funct3 == 0b010:
        imm = (word >> 20) & 0xFFF
        return f"lw x{rd}, {imm}(x{rs1})"
    if opcode == OPCODE_STORE:
        imm = (((word >> 25) & 0x7F) << 5) | ((word >> 7) & 0x1F)
        if funct3 == 0b010:
            return f"sw x{rs2}, {imm}(x{rs1})"
        return f"sw.undef[funct3={funct3:03b}] x{rs2}, {imm}(x{rs1})"
    if opcode == OPCODE_OP_IMM and funct3 == 0b000:
        imm = (word >> 20) & 0xFFF
        return f"addi x{rd}, x{rs1}, {imm}"
    if opcode == OPCODE_OP and funct3 == 0b000:
        return f"add x{rd}, x{rs1}, x{rs2}"
    if opcode == OPCODE_LUI:
        return f"lui x{rd}, {(word >> 12) & 0xFFFFF}"
    return f".word 0x{word:08x}"
