// Shared, pipelined data memory. Accepts one (already arbitrated)
// request per cycle: the request is latched into the r_* buffer on the
// clock edge; a write commits to the array on the following edge, and a
// read's data is presented combinationally during the following cycle —
// exactly when the issuing core's load sits in its WB stage.
//
// The r_core tag travels with the request (the per-request core-ID
// tagging described in the paper, section 5.1) so verification monitors
// can attribute memory-side events to cores.

module dmem #(
    parameter XLEN = 32,
    parameter ADDR_WIDTH = 4,
    parameter CORE_ID_WIDTH = 2
) (
    input  wire clk,
    input  wire reset,
    input  wire req_valid,
    input  wire req_write,
    input  wire [ADDR_WIDTH-1:0] req_addr,
    input  wire [XLEN-1:0] req_data,
    input  wire [CORE_ID_WIDTH-1:0] req_core,
    output wire resp_valid,
    output wire [XLEN-1:0] resp_data,
    output wire [CORE_ID_WIDTH-1:0] resp_core
);

    reg [XLEN-1:0] mem [0:(1<<ADDR_WIDTH)-1];

    // One-deep request pipeline buffer.
    reg r_valid;
    reg r_write;
    reg [ADDR_WIDTH-1:0] r_addr;
    reg [XLEN-1:0] r_data;
    reg [CORE_ID_WIDTH-1:0] r_core;

    always @(posedge clk) begin
        if (reset) begin
            r_valid <= 1'b0;
            r_write <= 1'b0;
            r_addr <= {ADDR_WIDTH{1'b0}};
            r_data <= {XLEN{1'b0}};
            r_core <= {CORE_ID_WIDTH{1'b0}};
`ifdef DROP_BUG
        // DROP_BUG variant (seeded-bug corpus): a write arriving while
        // the one-deep buffer still holds an uncommitted write is
        // silently dropped instead of being latched — the classic
        // "store lost on buffer-full" bug.  The request was accepted
        // by the arbiter (the core believes the store completed), but
        // it never reaches the array.
        end else if (r_valid && r_write && req_valid && req_write) begin
            r_valid <= 1'b0;
            r_write <= 1'b0;
            r_addr <= {ADDR_WIDTH{1'b0}};
            r_data <= {XLEN{1'b0}};
            r_core <= {CORE_ID_WIDTH{1'b0}};
`endif
        end else begin
            r_valid <= req_valid;
            r_write <= req_write;
            r_addr <= req_addr;
            r_data <= req_data;
            r_core <= req_core;
        end
    end

    always @(posedge clk) begin
        if (r_valid && r_write) begin
            mem[r_addr] <= r_data;
        end
    end

    assign resp_valid = r_valid && !r_write;
`ifdef MCM_BUG
    // MCM BUG variant: the read data is sampled one slot early, at the
    // *request* cycle instead of the processing cycle — a load can miss
    // the in-flight write it should observe (stale reads break
    // coherence and SC). This violates the functional-correctness
    // assumption of paper section 4.3.6, which the reproduction's
    // interface sanity SVA checks explicitly.
    reg [XLEN-1:0] early_data;
    always @(posedge clk) begin
        if (reset) early_data <= {XLEN{1'b0}};
        else early_data <= mem[req_addr];
    end
    assign resp_data = early_data;
`elsif BYPASS_BUG
    // BYPASS_BUG variant (seeded-bug corpus): a write-to-read bypass
    // path forwards the most recently committed write's data to the
    // next read response *without comparing addresses* — a read that
    // immediately follows any write returns that write's (possibly
    // unrelated, stale-for-this-address) data instead of the array
    // content.
    reg bypass_armed;
    reg [XLEN-1:0] bypass_data;
    always @(posedge clk) begin
        if (reset) begin
            bypass_armed <= 1'b0;
            bypass_data <= {XLEN{1'b0}};
        end else begin
            bypass_armed <= r_valid && r_write;
            bypass_data <= r_data;
        end
    end
    assign resp_data = bypass_armed ? bypass_data : mem[r_addr];
`else
    assign resp_data = mem[r_addr];
`endif
    assign resp_core = r_core;

endmodule
