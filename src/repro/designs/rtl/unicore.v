// A second case study: "unicore" — a single-core, 3-stage scalar
// machine with entirely different module/signal naming from the
// multi-V-scale, demonstrating that rtl2uspec's inputs are just a
// Verilog design plus metadata (IFR / PCR / IM_PC / interface), not
// anything specific to the V-scale.
//
// Pipeline: FE (fetch) -> DE (decode/execute) -> CM (commit).
// Memory requests issue from DE to a private single-ported memory unit
// that always accepts and responds one cycle later (during CM).

module unicore_mem #(
    parameter XLEN = 16,
    parameter AW = 3
) (
    input  wire clk,
    input  wire reset,
    input  wire q_valid,
    input  wire q_write,
    input  wire [AW-1:0] q_addr,
    input  wire [XLEN-1:0] q_data,
    input  wire q_src,
    output wire a_valid,
    output wire [XLEN-1:0] a_data,
    output wire a_src
);

    reg [XLEN-1:0] cells [0:(1<<AW)-1];

    reg p_valid;
    reg p_write;
    reg [AW-1:0] p_addr;
    reg [XLEN-1:0] p_data;
    reg p_src;

    always @(posedge clk) begin
        if (reset) begin
            p_valid <= 1'b0;
            p_write <= 1'b0;
            p_addr <= {AW{1'b0}};
            p_data <= {XLEN{1'b0}};
            p_src <= 1'b0;
        end else begin
            p_valid <= q_valid;
            p_write <= q_write;
            p_addr <= q_addr;
            p_data <= q_data;
            p_src <= q_src;
        end
    end

    always @(posedge clk) begin
        if (p_valid && p_write) begin
            cells[p_addr] <= p_data;
        end
    end

    assign a_valid = p_valid && !p_write;
    assign a_data = cells[p_addr];
    assign a_src = p_src;

endmodule

module unicore #(
    parameter XLEN = 16,
    parameter PCW = 4,
    parameter AW = 3
) (
    input  wire clk,
    input  wire reset
`ifdef FORMAL
    , input wire [31:0] fetch_word
`endif
);

    localparam NOP = 32'h00000013;
    localparam OPCODE_LOAD  = 7'b0000011;
    localparam OPCODE_STORE = 7'b0100011;
    localparam OPCODE_OP_IMM = 7'b0010011;

    // FE stage: the fetch PC (IM_PC analogue) and the fetch store.
    reg [PCW-1:0] fetch_pc;
`ifndef FORMAL
    reg [31:0] istore [0:(1<<PCW)-1];
    wire [31:0] fetch_word;
    assign fetch_word = istore[fetch_pc];
`endif

    // DE stage: instruction register (the IFR) and its PC (PCR[0]).
    reg [31:0] ir_de;
    reg [PCW-1:0] pc_de;

    wire [6:0] opc;
    wire [2:0] fn3;
    wire [4:0] srcA;
    wire [4:0] srcB;
    wire [4:0] dst;
    assign opc = ir_de[6:0];
    assign fn3 = ir_de[14:12];
    assign srcA = ir_de[19:15];
    assign srcB = ir_de[24:20];
    assign dst = ir_de[11:7];

    wire de_load;
    wire de_store;
    wire de_alu;
    assign de_load = (opc == OPCODE_LOAD) && (fn3 == 3'b010);
    assign de_store = (opc == OPCODE_STORE) && (fn3 == 3'b010);
    assign de_alu = (opc == OPCODE_OP_IMM) && (fn3 == 3'b000);

    reg [XLEN-1:0] gpr [0:31];
    wire [XLEN-1:0] opA;
    wire [XLEN-1:0] opB;
    wire [XLEN-1:0] cm_value;
    wire fwdA;
    wire fwdB;

    // CM-stage registers (PCR[1] and commit metadata).
    reg [PCW-1:0] pc_cm;
    reg [4:0] dst_cm;
    reg ld_cm;
    reg wr_cm;
    reg [XLEN-1:0] res_cm;

    assign fwdA = wr_cm && (dst_cm == srcA) && (srcA != 5'd0);
    assign fwdB = wr_cm && (dst_cm == srcB) && (srcB != 5'd0);
    assign opA = fwdA ? cm_value : ((srcA == 5'd0) ? {XLEN{1'b0}} : gpr[srcA]);
    assign opB = fwdB ? cm_value : ((srcB == 5'd0) ? {XLEN{1'b0}} : gpr[srcB]);

    wire [XLEN-1:0] imm;
    wire [XLEN-1:0] simm;
    assign imm = {{(XLEN-12){ir_de[31]}}, ir_de[31:20]};
    assign simm = {{(XLEN-12){ir_de[31]}}, ir_de[31:25], ir_de[11:7]};

    wire [XLEN-1:0] ea;
    assign ea = opA + (de_store ? simm : imm);

    // Memory unit interface (always ready; src tag for monitors).
    wire mq_valid;
    wire mq_write;
    wire [AW-1:0] mq_addr;
    wire [XLEN-1:0] mq_data;
    wire mq_fire;
    wire ma_valid;
    wire [XLEN-1:0] ma_data;
    wire ma_src;

    assign mq_valid = de_load || de_store;
    assign mq_write = de_store;
    assign mq_addr = ea[AW+1:2];
    assign mq_data = opB;
    assign mq_fire = mq_valid;

    unicore_mem #(.XLEN(XLEN), .AW(AW)) dstore (
        .clk(clk),
        .reset(reset),
        .q_valid(mq_valid),
        .q_write(mq_write),
        .q_addr(mq_addr),
        .q_data(mq_data),
        .q_src(1'b0),
        .a_valid(ma_valid),
        .a_data(ma_data),
        .a_src(ma_src)
    );

    always @(posedge clk) begin
        if (reset) begin
            fetch_pc <= {PCW{1'b0}};
            pc_de <= {PCW{1'b0}};
            ir_de <= NOP;
        end else begin
            fetch_pc <= fetch_pc + 1'b1;
            pc_de <= fetch_pc;
            ir_de <= fetch_word;
        end
    end

    always @(posedge clk) begin
        if (reset) begin
            pc_cm <= {PCW{1'b0}};
            dst_cm <= 5'd0;
            ld_cm <= 1'b0;
            wr_cm <= 1'b0;
            res_cm <= {XLEN{1'b0}};
        end else begin
            pc_cm <= pc_de;
            dst_cm <= dst;
            ld_cm <= de_load;
            wr_cm <= (de_load || de_alu) && (dst != 5'd0);
            res_cm <= opA + imm;
        end
    end

    assign cm_value = ld_cm ? ma_data : res_cm;

    always @(posedge clk) begin
        if (wr_cm) begin
            gpr[dst_cm] <= cm_value;
        end
    end

endmodule
