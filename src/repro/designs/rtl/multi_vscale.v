// multi-V-scale top level: NCORES in-order V-scale cores, a round-robin
// arbiter, and one shared pipelined data memory (paper section 5.1).
//
// `define FORMAL replaces the per-core instruction memories with free
// top-level inputs, so the property checker can treat the fetched
// instruction stream as symbolic (constrained only by SVA assumptions) —
// the same effect the paper obtains from JasperGold assumptions on the
// instruction fetch register.

module multi_vscale #(
    parameter NCORES = 4,
    parameter XLEN = 32,
    parameter PC_WIDTH = 6,
    parameter DMEM_ADDR_WIDTH = 4,
    parameter CORE_ID_WIDTH = 2
) (
    input  wire clk,
    input  wire reset
`ifdef FORMAL
    , input wire [NCORES*32-1:0] imem_rdata_flat
`endif
);

    wire [NCORES-1:0] req_valid;
    wire [NCORES-1:0] req_write;
    wire [NCORES*DMEM_ADDR_WIDTH-1:0] req_addr_flat;
    wire [NCORES*XLEN-1:0] req_data_flat;
    wire [NCORES-1:0] req_ready;

    wire mem_req_valid;
    wire mem_req_write;
    wire [DMEM_ADDR_WIDTH-1:0] mem_req_addr;
    wire [XLEN-1:0] mem_req_data;
    wire [CORE_ID_WIDTH-1:0] mem_req_core;

    wire resp_valid;
    wire [XLEN-1:0] resp_data;
    wire [CORE_ID_WIDTH-1:0] resp_core;

    genvar i;
    generate
        for (i = 0; i < NCORES; i = i + 1) begin : core_gen
            wire [PC_WIDTH-1:0] imem_addr;
            wire [31:0] imem_rdata;

`ifdef FORMAL
            assign imem_rdata = imem_rdata_flat[i*32 +: 32];
`else
            imem #(.PC_WIDTH(PC_WIDTH)) imem_inst (
                .addr(imem_addr),
                .rdata(imem_rdata)
            );
`endif

            vscale_core #(
                .XLEN(XLEN),
                .PC_WIDTH(PC_WIDTH),
                .DMEM_ADDR_WIDTH(DMEM_ADDR_WIDTH)
            ) core (
                .clk(clk),
                .reset(reset),
                .imem_addr(imem_addr),
                .imem_rdata(imem_rdata),
                .dmem_req_valid(req_valid[i]),
                .dmem_req_write(req_write[i]),
                .dmem_req_addr(req_addr_flat[i*DMEM_ADDR_WIDTH +: DMEM_ADDR_WIDTH]),
                .dmem_req_data(req_data_flat[i*XLEN +: XLEN]),
                .dmem_req_ready(req_ready[i]),
                .dmem_resp_valid(resp_valid),
                .dmem_resp_data(resp_data)
            );
        end
    endgenerate

    arbiter #(
        .NCORES(NCORES),
        .XLEN(XLEN),
        .ADDR_WIDTH(DMEM_ADDR_WIDTH),
        .CORE_ID_WIDTH(CORE_ID_WIDTH)
    ) arb (
        .clk(clk),
        .reset(reset),
        .core_req_valid(req_valid),
        .core_req_write(req_write),
        .core_req_addr_flat(req_addr_flat),
        .core_req_data_flat(req_data_flat),
        .core_req_ready(req_ready),
        .mem_req_valid(mem_req_valid),
        .mem_req_write(mem_req_write),
        .mem_req_addr(mem_req_addr),
        .mem_req_data(mem_req_data),
        .mem_req_core(mem_req_core)
    );

    dmem #(
        .XLEN(XLEN),
        .ADDR_WIDTH(DMEM_ADDR_WIDTH),
        .CORE_ID_WIDTH(CORE_ID_WIDTH)
    ) the_mem (
        .clk(clk),
        .reset(reset),
        .req_valid(mem_req_valid),
        .req_write(mem_req_write),
        .req_addr(mem_req_addr),
        .req_data(mem_req_data),
        .req_core(mem_req_core),
        .resp_valid(resp_valid),
        .resp_data(resp_data),
        .resp_core(resp_core)
    );

endmodule
