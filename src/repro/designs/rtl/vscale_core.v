// One core of the multi-V-scale: a 3-stage in-order pipeline (IF -> DX -> WB)
// implementing the RV32I subset needed for MCM litmus testing (lw, sw, addi,
// add, lui; everything else retires as a no-op in the fixed design).
//
// Structure follows the RISC-V V-scale described in the rtl2uspec paper
// (MICRO'21, Fig. 3a): the instruction fetch register is `inst_DX`, the
// per-stage program counters are `PC_DX` (PCR[0], same stage as the IFR)
// and `PC_WB` (PCR[1]), and `PC_IF` is the instruction-memory PC (IM_PC).
// Memory instructions issue a request to the shared-memory arbiter from DX
// and stall there until granted; the pipelined memory responds during the
// instruction's WB cycle.
//
// `define BUG selects the decoder bug studied in the paper's section 6.1:
// any instruction with the STORE opcode updates memory, even when its
// funct3 width field is undefined (e.g. 3'b111). The fixed decoder only
// recognizes funct3 == 3'b010 (sw) and squashes everything else.

module vscale_core #(
    parameter XLEN = 32,
    parameter PC_WIDTH = 6,
    parameter DMEM_ADDR_WIDTH = 4
) (
    input  wire clk,
    input  wire reset,
    // Instruction fetch interface (combinational instruction memory).
    output wire [PC_WIDTH-1:0] imem_addr,
    input  wire [31:0] imem_rdata,
    // Data memory request interface, towards the arbiter.
    output wire dmem_req_valid,
    output wire dmem_req_write,
    output wire [DMEM_ADDR_WIDTH-1:0] dmem_req_addr,
    output wire [XLEN-1:0] dmem_req_data,
    input  wire dmem_req_ready,
    // Data memory response interface (broadcast from the shared memory).
    input  wire dmem_resp_valid,
    input  wire [XLEN-1:0] dmem_resp_data
);

    localparam NOP = 32'h00000013;  // addi x0, x0, 0

    localparam OPCODE_LOAD   = 7'b0000011;
    localparam OPCODE_STORE  = 7'b0100011;
    localparam OPCODE_OP_IMM = 7'b0010011;
    localparam OPCODE_OP     = 7'b0110011;
    localparam OPCODE_LUI    = 7'b0110111;

    // ------------------------------------------------------------------
    // IF stage: PC_IF indexes the instruction memory (IM_PC).
    // ------------------------------------------------------------------
    reg [PC_WIDTH-1:0] PC_IF;
    assign imem_addr = PC_IF;

    // ------------------------------------------------------------------
    // DX stage registers: the IFR (inst_DX) and PCR[0] (PC_DX).
    // ------------------------------------------------------------------
    reg [31:0] inst_DX;
    reg [PC_WIDTH-1:0] PC_DX;

    // Decode.
    wire [6:0] opcode;
    wire [2:0] funct3;
    wire [6:0] funct7;
    wire [4:0] rs1;
    wire [4:0] rs2;
    wire [4:0] rd;
    assign opcode = inst_DX[6:0];
    assign funct3 = inst_DX[14:12];
    assign funct7 = inst_DX[31:25];
    assign rs1 = inst_DX[19:15];
    assign rs2 = inst_DX[24:20];
    assign rd  = inst_DX[11:7];

    wire is_lw;
    wire is_sw;
    wire is_addi;
    wire is_add;
    wire is_lui;
    wire writes_rf;
    wire is_mem;

    assign is_lw = (opcode == OPCODE_LOAD) && (funct3 == 3'b010);
`ifdef BUG
    // BUG (paper section 6.1): the width field is not decoded, so an
    // undefined store encoding (e.g. funct3 == 3'b111) updates memory.
    assign is_sw = (opcode == OPCODE_STORE);
`else
    assign is_sw = (opcode == OPCODE_STORE) && (funct3 == 3'b010);
`endif
    assign is_addi = (opcode == OPCODE_OP_IMM) && (funct3 == 3'b000);
    assign is_add = (opcode == OPCODE_OP) && (funct3 == 3'b000) && (funct7 == 7'b0000000);
    assign is_lui = (opcode == OPCODE_LUI);
    assign writes_rf = is_lw || is_addi || is_add || is_lui;
    assign is_mem = is_lw || is_sw;

    // Register file: 32 x XLEN, combinational read, written from WB.
    // A WB->DX bypass network resolves the read-after-write hazard of
    // the 3-stage pipeline (the V-scale forwards its WB value).
    reg [XLEN-1:0] regfile [0:31];
    wire [XLEN-1:0] wb_value;
    wire bypass_rs1;
    wire bypass_rs2;
    wire [XLEN-1:0] rs1_data;
    wire [XLEN-1:0] rs2_data;
    assign bypass_rs1 = wen_WB && (rd_WB == rs1) && (rs1 != 5'd0);
    assign bypass_rs2 = wen_WB && (rd_WB == rs2) && (rs2 != 5'd0);
    assign rs1_data = bypass_rs1 ? wb_value
                    : ((rs1 == 5'd0) ? {XLEN{1'b0}} : regfile[rs1]);
    assign rs2_data = bypass_rs2 ? wb_value
                    : ((rs2 == 5'd0) ? {XLEN{1'b0}} : regfile[rs2]);

    // Immediates (sign-extended when XLEN allows; truncated on the
    // width-reduced formal configuration, which only exercises small
    // immediates anyway).
    wire [11:0] imm_i;
    wire [11:0] imm_s;
    assign imm_i = inst_DX[31:20];
    assign imm_s = {inst_DX[31:25], inst_DX[11:7]};
    wire [XLEN-1:0] imm_i_ext;
    wire [XLEN-1:0] imm_s_ext;
    generate
        if (XLEN >= 13) begin : imm_wide
            assign imm_i_ext = {{(XLEN-12){imm_i[11]}}, imm_i};
            assign imm_s_ext = {{(XLEN-12){imm_s[11]}}, imm_s};
        end else begin : imm_narrow
            assign imm_i_ext = imm_i[XLEN-1:0];
            assign imm_s_ext = imm_s[XLEN-1:0];
        end
    endgenerate
    wire [XLEN-1:0] imm_u_ext;
    assign imm_u_ext = {inst_DX[31:12], 12'b000000000000};

    // Execute.
    wire [XLEN-1:0] alu_out;
    assign alu_out = is_add ? (rs1_data + rs2_data)
                   : (is_lui ? imm_u_ext
                   : (is_sw ? (rs1_data + imm_s_ext)
                            : (rs1_data + imm_i_ext)));

    // Data memory request (word-addressed).
    assign dmem_req_valid = is_mem;
    assign dmem_req_write = is_sw;
    assign dmem_req_addr = alu_out[DMEM_ADDR_WIDTH+1:2];
    assign dmem_req_data = rs2_data;

    // A memory instruction holds DX (and upstream IF) until the arbiter
    // grants its request; everything else flows freely.
    wire stall_DX;
    assign stall_DX = is_mem && !dmem_req_ready;

    // Request-accepted strobe, exposed for verification monitors.
    wire dmem_req_fire;
    assign dmem_req_fire = dmem_req_valid && dmem_req_ready;

    always @(posedge clk) begin
        if (reset) begin
            PC_IF <= {PC_WIDTH{1'b0}};
            PC_DX <= {PC_WIDTH{1'b0}};
            inst_DX <= NOP;
        end else if (!stall_DX) begin
            PC_IF <= PC_IF + 1'b1;
            PC_DX <= PC_IF;
            inst_DX <= imem_rdata;
        end
    end

    // ------------------------------------------------------------------
    // WB stage registers: PCR[1] (PC_WB), control flags, write data.
    // ------------------------------------------------------------------
    reg [PC_WIDTH-1:0] PC_WB;
    reg [4:0] rd_WB;
    reg lw_in_WB;
    reg sw_in_WB;
    reg wen_WB;
    reg [XLEN-1:0] wdata;

    always @(posedge clk) begin
        if (reset) begin
            PC_WB <= {PC_WIDTH{1'b0}};
            rd_WB <= 5'd0;
            lw_in_WB <= 1'b0;
            sw_in_WB <= 1'b0;
            wen_WB <= 1'b0;
            wdata <= {XLEN{1'b0}};
        end else if (stall_DX) begin
            // Insert a bubble while DX waits for the memory.
            lw_in_WB <= 1'b0;
            sw_in_WB <= 1'b0;
            wen_WB <= 1'b0;
        end else begin
            PC_WB <= PC_DX;
            rd_WB <= rd;
            lw_in_WB <= is_lw;
            sw_in_WB <= is_sw;
            wen_WB <= writes_rf && (rd != 5'd0);
            wdata <= alu_out;
        end
    end

    // Register file writeback: ALU results come from wdata; load data
    // arrives from the pipelined memory during the WB cycle.
    assign wb_value = lw_in_WB ? dmem_resp_data : wdata;

    always @(posedge clk) begin
        if (wen_WB) begin
            regfile[rd_WB] <= wb_value;
        end
    end

endmodule
