// Round-robin arbiter connecting all cores to the single shared data
// memory. One core's request is accepted per cycle; concurrent requesters
// are stalled (paper section 5.1). The granted request is forwarded to
// the memory tagged with the issuing core's ID — the 2-bit-per-request
// tagging the paper added to support rtl2uspec's request-response
// interface metadata (section 4.3.4).

module arbiter #(
    parameter NCORES = 4,
    parameter XLEN = 32,
    parameter ADDR_WIDTH = 4,
    parameter CORE_ID_WIDTH = 2
) (
    input  wire clk,
    input  wire reset,
    // Per-core request buses (flattened).
    input  wire [NCORES-1:0] core_req_valid,
    input  wire [NCORES-1:0] core_req_write,
    input  wire [NCORES*ADDR_WIDTH-1:0] core_req_addr_flat,
    input  wire [NCORES*XLEN-1:0] core_req_data_flat,
    output wire [NCORES-1:0] core_req_ready,
    // Granted request, towards the shared memory.
    output wire mem_req_valid,
    output wire mem_req_write,
    output wire [ADDR_WIDTH-1:0] mem_req_addr,
    output wire [XLEN-1:0] mem_req_data,
    output wire [CORE_ID_WIDTH-1:0] mem_req_core
);

    // rr_ptr names the highest-priority core for the current cycle.
    reg [CORE_ID_WIDTH-1:0] rr_ptr;

    reg grant_any;
    reg [CORE_ID_WIDTH-1:0] grant_idx;
    integer k;

    always @(*) begin
        grant_any = 1'b0;
        grant_idx = {CORE_ID_WIDTH{1'b0}};
        // Scan from lowest to highest priority; the final (blocking)
        // assignment wins, so the highest-priority requester is granted.
        for (k = NCORES - 1; k >= 0; k = k - 1) begin
            if (core_req_valid[(rr_ptr + k < NCORES) ? (rr_ptr + k) : (rr_ptr + k - NCORES)]) begin
                grant_any = 1'b1;
                grant_idx = (rr_ptr + k < NCORES) ? (rr_ptr + k) : (rr_ptr + k - NCORES);
            end
        end
    end

    assign core_req_ready = grant_any
        ? ({{(NCORES-1){1'b0}}, 1'b1} << grant_idx)
        : {NCORES{1'b0}};

    // Forward the granted core's request.
    wire [NCORES*ADDR_WIDTH-1:0] addr_shifted;
    wire [NCORES*XLEN-1:0] data_shifted;
    assign addr_shifted = core_req_addr_flat >> (grant_idx * ADDR_WIDTH);
    assign data_shifted = core_req_data_flat >> (grant_idx * XLEN);

    assign mem_req_valid = grant_any;
    assign mem_req_write = grant_any && core_req_write[grant_idx];
    assign mem_req_addr = addr_shifted[ADDR_WIDTH-1:0];
    assign mem_req_data = data_shifted[XLEN-1:0];
    assign mem_req_core = grant_idx;

    // Advance the priority pointer past the granted core.
`ifdef ARB_BUG
    // ARB_BUG variant (seeded-bug corpus): the priority pointer never
    // advances, so arbitration degenerates to fixed priority — a
    // continuously-requesting core 0 starves every other core.  This
    // falsifies the bounded-service guarantee (`iface-service`) the
    // compositional A1 proofs assume, without ever changing the
    // outcome of any finite program.
    always @(posedge clk) begin
        if (reset) begin
            rr_ptr <= {CORE_ID_WIDTH{1'b0}};
        end
    end
`else
    always @(posedge clk) begin
        if (reset) begin
            rr_ptr <= {CORE_ID_WIDTH{1'b0}};
        end else if (grant_any) begin
            rr_ptr <= (grant_idx == NCORES - 1) ? {CORE_ID_WIDTH{1'b0}}
                                                : (grant_idx + 1'b1);
        end
    end
`endif

endmodule
