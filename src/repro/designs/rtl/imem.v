// Per-core instruction memory with a combinational read port.
//
// The paper's case study (section 5.1) splits the original V-scale's
// unified memory into distinct instruction and data memory modules so the
// netlist frontend recognizes the data memory as an addressable array;
// this design is born split. Contents are loaded by the test harness
// (simulation) or left symbolic / replaced by free inputs (formal).

module imem #(
    parameter PC_WIDTH = 6
) (
    input  wire [PC_WIDTH-1:0] addr,
    output wire [31:0] rdata
);

    reg [31:0] mem [0:(1<<PC_WIDTH)-1];
    assign rdata = mem[addr];

endmodule
