"""Bundled hardware designs: the RISC-V multi-V-scale case study.

The RTL lives in ``rtl/`` as plain SystemVerilog; this package compiles
it through the ``repro.verilog`` frontend and supplies the rtl2uspec
design metadata the paper's case study requires.
"""

from . import isa
from .loader import (
    load_unicore,
    unicore_metadata,
    FORMAL_CONFIG,
    FORMAL_CONFIG_4CORE,
    FORMAL_CONFIG_8CORE,
    FORMAL_CONFIG_16CORE,
    LW_SW_ENCODINGS,
    RTL_DIR,
    SIM_CONFIG,
    DesignConfig,
    load_design,
    load_design_hier,
    load_single_core,
    multi_vscale_metadata,
    read_rtl_sources,
)

__all__ = [
    "load_unicore",
    "unicore_metadata",
    "isa",
    "DesignConfig",
    "SIM_CONFIG",
    "FORMAL_CONFIG",
    "FORMAL_CONFIG_4CORE",
    "FORMAL_CONFIG_8CORE",
    "FORMAL_CONFIG_16CORE",
    "LW_SW_ENCODINGS",
    "RTL_DIR",
    "load_design",
    "load_design_hier",
    "load_single_core",
    "multi_vscale_metadata",
    "read_rtl_sources",
]
