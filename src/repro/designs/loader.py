"""Design loading: compile the bundled multi-V-scale RTL into netlists.

A :class:`DesignConfig` selects parameters (core count, data width,
memory depths) and variants (``formal`` cuts the instruction memories
into free inputs; ``buggy`` selects the section-6.1 decoder bug). The
companion :func:`multi_vscale_metadata` builds the rtl2uspec design
metadata for any configuration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..core.metadata import DesignMetadata, InstructionEncoding, RequestResponseInterface
from ..netlist import HierNetlist, Netlist
from ..verilog import compile_verilog, compile_verilog_hier

RTL_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "rtl")

_RTL_FILES = ("vscale_core.v", "imem.v", "arbiter.v", "dmem.v", "multi_vscale.v")


@dataclass(frozen=True)
class DesignConfig:
    """Parameter/variant selection for the bundled multi-V-scale."""

    num_cores: int = 4
    xlen: int = 32
    pc_width: int = 6
    dmem_addr_width: int = 4
    formal: bool = False      # replace instruction memories with free inputs
    buggy: bool = False       # select the section-6.1 decoder bug
    mcm_buggy: bool = False   # select the stale-read memory bug (MCM violation)
    arb_bug: bool = False     # arbiter priority pointer frozen (starvation)
    drop_bug: bool = False    # store dropped when the dmem buffer holds a write
    bypass_bug: bool = False  # address-blind write-to-read bypass forwarding

    @property
    def core_id_width(self) -> int:
        return max(1, (self.num_cores - 1).bit_length())

    @property
    def dmem_depth(self) -> int:
        return 1 << self.dmem_addr_width

    @property
    def imem_depth(self) -> int:
        return 1 << self.pc_width

    def with_variant(self, formal: Optional[bool] = None,
                     buggy: Optional[bool] = None,
                     mcm_buggy: Optional[bool] = None,
                     arb_bug: Optional[bool] = None,
                     drop_bug: Optional[bool] = None,
                     bypass_bug: Optional[bool] = None) -> "DesignConfig":
        """Derive a config differing only in variant flags."""
        return replace(
            self,
            formal=self.formal if formal is None else formal,
            buggy=self.buggy if buggy is None else buggy,
            mcm_buggy=self.mcm_buggy if mcm_buggy is None else mcm_buggy,
            arb_bug=self.arb_bug if arb_bug is None else arb_bug,
            drop_bug=self.drop_bug if drop_bug is None else drop_bug,
            bypass_bug=self.bypass_bug if bypass_bug is None else bypass_bug,
        )


#: Full-scale configuration used for simulation and litmus runs.
SIM_CONFIG = DesignConfig()

#: Width-reduced configuration used for formal property checks (the
#: data-width abstraction documented in DESIGN.md): ordering behaviour is
#: unchanged, the SAT problems shrink dramatically.
FORMAL_CONFIG = DesignConfig(num_cores=2, xlen=8, pc_width=4,
                             dmem_addr_width=2, formal=True)

#: Formal configuration with all four cores (slower; used by the larger
#: benchmark runs).
FORMAL_CONFIG_4CORE = DesignConfig(num_cores=4, xlen=8, pc_width=4,
                                   dmem_addr_width=2, formal=True)

#: Wide formal configurations for compositional synthesis (ROADMAP item
#: 5): at these core counts monolithic discharge is impractical, but the
#: per-module obligation graph only ever proves ONE core instance, so
#: synthesis cost stays near the 2-core config's.
FORMAL_CONFIG_8CORE = DesignConfig(num_cores=8, xlen=8, pc_width=4,
                                   dmem_addr_width=2, formal=True)

#: 16-core stretch config. Note: the default A1 progress horizon
#: (num_cores + 6 over the *simulation* metadata) is tighter than the
#: 16-entry round-robin service bound, so compose-mode A1 obligations
#: need an explicit wider horizon at this scale (docs/compositional.md).
FORMAL_CONFIG_16CORE = DesignConfig(num_cores=16, xlen=8, pc_width=4,
                                    dmem_addr_width=2, formal=True)


def read_rtl_sources() -> str:
    """Concatenate the bundled RTL source files."""
    chunks = []
    for fname in _RTL_FILES:
        with open(os.path.join(RTL_DIR, fname), "r", encoding="utf-8") as handle:
            chunks.append(handle.read())
    return "\n".join(chunks)


def _design_frontend_args(config: DesignConfig):
    defines: Dict[str, str] = {}
    if config.formal:
        defines["FORMAL"] = "1"
    if config.buggy:
        defines["BUG"] = "1"
    if config.mcm_buggy:
        defines["MCM_BUG"] = "1"
    if config.arb_bug:
        defines["ARB_BUG"] = "1"
    if config.drop_bug:
        defines["DROP_BUG"] = "1"
    if config.bypass_bug:
        defines["BYPASS_BUG"] = "1"
    params = {
        "NCORES": config.num_cores,
        "XLEN": config.xlen,
        "PC_WIDTH": config.pc_width,
        "DMEM_ADDR_WIDTH": config.dmem_addr_width,
        "CORE_ID_WIDTH": config.core_id_width,
    }
    return params, defines


def load_design(config: DesignConfig = SIM_CONFIG) -> Netlist:
    """Compile the multi-V-scale with the given configuration."""
    params, defines = _design_frontend_args(config)
    return compile_verilog(read_rtl_sources(), "multi_vscale",
                           params=params, defines=defines)


def load_design_hier(config: DesignConfig = SIM_CONFIG) -> HierNetlist:
    """Hierarchy-preserving variant of :func:`load_design` — same flat
    netlist (``flatten()`` is fingerprint-identical) plus per-module
    netlists and instance boundary records for compositional synthesis."""
    params, defines = _design_frontend_args(config)
    return compile_verilog_hier(read_rtl_sources(), "multi_vscale",
                                params=params, defines=defines)


def load_single_core(config: DesignConfig = SIM_CONFIG) -> Netlist:
    """Compile a single V-scale core in isolation (paper Fig. 3a/5.1
    single-core statistics)."""
    defines: Dict[str, str] = {"BUG": "1"} if config.buggy else {}
    params = {
        "XLEN": config.xlen,
        "PC_WIDTH": config.pc_width,
        "DMEM_ADDR_WIDTH": config.dmem_addr_width,
    }
    with open(os.path.join(RTL_DIR, "vscale_core.v"), "r", encoding="utf-8") as handle:
        source = handle.read()
    return compile_verilog(source, "vscale_core", params=params, defines=defines)


#: Standard rtl2uspec instruction encodings for MCM verification: the
#: paper's case study models sw (ID 0) and lw (ID 1) only.
LW_SW_ENCODINGS = [
    InstructionEncoding("sw", match=0b0100011 | (0b010 << 12),
                        mask=0x7F | (0x7 << 12), is_write=True),
    InstructionEncoding("lw", match=0b0000011 | (0b010 << 12),
                        mask=0x7F | (0x7 << 12), is_read=True),
]


def multi_vscale_metadata(config: DesignConfig = SIM_CONFIG) -> DesignMetadata:
    """The designer-supplied metadata for the bundled multi-V-scale
    (paper sections 4.2.1 and 4.3.4)."""
    core = "core_gen[{core}].core."
    iface = RequestResponseInterface(
        resource="the_mem.mem",
        core_req_valid=core + "dmem_req_valid",
        core_req_sent=core + "dmem_req_fire",
        core_req_write=core + "dmem_req_write",
        core_req_addr=core + "dmem_req_addr",
        core_req_data=core + "dmem_req_data",
        mem_req_valid="mem_req_valid",
        mem_req_write="mem_req_write",
        mem_req_addr="mem_req_addr",
        mem_req_data="mem_req_data",
        mem_req_core="mem_req_core",
        proc_valid="the_mem.r_valid",
        proc_write="the_mem.r_write",
        proc_addr="the_mem.r_addr",
        proc_core="the_mem.r_core",
        resp_valid="resp_valid",
        resp_data="resp_data",
    )
    return DesignMetadata(
        ifr=core + "inst_DX",
        pcr=[core + "PC_DX", core + "PC_WB"],
        im_pc=core + "PC_IF",
        num_cores=config.num_cores,
        encodings=list(LW_SW_ENCODINGS),
        interfaces=[iface],
        shared_prefixes=["the_mem.", "arb.", "mem_req_", "resp_"],
    )


# ---------------------------------------------------------------------------
# Second case study: the "unicore" (a single-core 3-stage machine with
# different structure and naming; see rtl/unicore.v).
# ---------------------------------------------------------------------------

def load_unicore(xlen: int = 16, pcw: int = 4, aw: int = 3,
                 formal: bool = False) -> Netlist:
    """Compile the unicore design. The default variant has a real fetch
    store (``istore``) for simulation and DFG extraction; ``formal=True``
    cuts instruction fetch into a free input for property checking."""
    with open(os.path.join(RTL_DIR, "unicore.v"), "r", encoding="utf-8") as handle:
        source = handle.read()
    defines = {"FORMAL": "1"} if formal else {}
    return compile_verilog(source, "unicore", defines=defines,
                           params={"XLEN": xlen, "PCW": pcw, "AW": aw})


def unicore_metadata() -> DesignMetadata:
    """Designer metadata for the unicore (paper sections 4.2.1/4.3.4)."""
    iface = RequestResponseInterface(
        resource="dstore.cells",
        core_req_valid="mq_valid",
        core_req_sent="mq_fire",
        core_req_write="mq_write",
        core_req_addr="mq_addr",
        core_req_data="mq_data",
        mem_req_valid="mq_valid",
        mem_req_write="mq_write",
        mem_req_addr="mq_addr",
        mem_req_data="mq_data",
        mem_req_core="dstore.q_src",
        proc_valid="dstore.p_valid",
        proc_write="dstore.p_write",
        proc_addr="dstore.p_addr",
        proc_core="dstore.p_src",
        resp_valid="ma_valid",
        resp_data="ma_data",
    )
    encodings = [
        InstructionEncoding("sw", match=0b0100011 | (0b010 << 12),
                            mask=0x7F | (0x7 << 12), is_write=True),
        InstructionEncoding("lw", match=0b0000011 | (0b010 << 12),
                            mask=0x7F | (0x7 << 12), is_read=True),
    ]
    return DesignMetadata(
        ifr="ir_de",
        pcr=["pc_de", "pc_cm"],
        im_pc="fetch_pc",
        num_cores=1,
        encodings=encodings,
        interfaces=[iface],
        shared_prefixes=["dstore."],
    )
