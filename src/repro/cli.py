"""Command-line interface: ``rtl2uspec`` / ``python -m repro``.

Subcommands mirror the paper's artifact workflow (appendix A.4):

* ``synth``  — synthesize a µspec model from the bundled multi-V-scale
  (or any Verilog file + metadata preset) and write a ``.uarch`` file.
* ``check``  — run the litmus suite (or named tests) against a µspec
  model with the Check-style verifier.
* ``sweep``  — exhaustive small-program exactness sweep.
* ``pipeline`` — end-to-end parse → synth → check with crash-safe
  stage checkpoints in a state directory.
* ``litmus`` — print suite tests in the litmus text format.
* ``run``    — execute a litmus test on the RTL simulator.
* ``stats``  — print design-size statistics (paper section 5.1).
* ``serve``  — persistent verification daemon: warm workers, crash-safe
  job ledger, persistent verdict/bitblast store (see docs/service.md).
* ``submit`` / ``status`` / ``result`` — clients of a running daemon.
* ``cache``  — inspect/verify/gc the daemon's persistent store.

Every command follows one jobs convention (``-j/--jobs``): ``1`` is
serial, ``N>1`` uses N worker processes, and ``0`` (or any value
``<=0``) means all cores — verdicts and reports are identical for any
job count.

Exit codes: ``0`` success, ``1`` verification failures (or undecided
budget-exhausted verdicts), ``2`` usage/data errors
(:class:`repro.errors.ReproError`), ``130``/``143`` interrupted by
SIGINT/SIGTERM after checkpointing (resume with ``--resume``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import __version__

JOBS_HELP = ("worker processes (1 = serial, N>1 = N workers, 0 = all "
             "cores); verdicts are identical for any job count")


def _install_interrupt_handlers(journal, argv_hint: str) -> None:
    """Flush the verdict journal and print the resume recipe when the
    run is interrupted (Ctrl-C) or terminated (SIGTERM)."""
    import signal

    def handler(signum, _frame):
        journal.commit()
        print(f"\ninterrupted — {len(journal)} verdict(s) checkpointed in "
              f"{journal.path}", file=sys.stderr)
        print(f"resume with: {argv_hint}", file=sys.stderr)
        sys.exit(130 if signum == signal.SIGINT else 143)

    signal.signal(signal.SIGINT, handler)
    signal.signal(signal.SIGTERM, handler)


def _convert_sigterm() -> dict:
    """Route SIGTERM through the KeyboardInterrupt checkpoint path
    (clean pool shutdown, journal commit) and remember which signal
    fired so the exit code distinguishes 130 from 143."""
    import signal

    state = {"signum": None}

    def handler(signum, _frame):
        state["signum"] = signum
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, handler)
    return state


def _interrupt_exit_code(state: dict) -> int:
    import signal
    return 143 if state.get("signum") == signal.SIGTERM else 130


def _print_interrupt(exc, resume_hint: str) -> None:
    print(f"\ninterrupted — {exc}", file=sys.stderr)
    if exc.resumable:
        print(f"resume with: {resume_hint}", file=sys.stderr)
    else:
        print("(run again with --journal <path> to make interrupted runs "
              "resumable)", file=sys.stderr)


def _load_model(path: str):
    from .uspec import parse_model

    if path:
        with open(path, "r", encoding="utf-8") as handle:
            model = parse_model(handle.read())
        return model
    from .designs.models import load_reference_model
    return load_reference_model()


def _check_budget(timeout: float):
    from .resilience import Budget
    return Budget(timeout_seconds=timeout) if timeout else None


def _fault_plan(spec: str):
    from .resilience import parse_fault_spec
    return parse_fault_spec(spec) if spec else None


#: --cores value -> formal design configuration
_FORMAL_CONFIGS = (2, 4, 8, 16)


def _formal_config(cores: int):
    from .designs import (
        FORMAL_CONFIG,
        FORMAL_CONFIG_4CORE,
        FORMAL_CONFIG_8CORE,
        FORMAL_CONFIG_16CORE,
    )
    return {2: FORMAL_CONFIG, 4: FORMAL_CONFIG_4CORE,
            8: FORMAL_CONFIG_8CORE, 16: FORMAL_CONFIG_16CORE}[cores]


def _cmd_synth(args: argparse.Namespace) -> int:
    from . import synthesize_uspec
    from .formal import PropertyChecker
    from .uspec import format_model

    engine_checker = PropertyChecker(bound=args.bound, max_k=args.max_k,
                                     engine=args.engine,
                                     sat_core=args.sat_core,
                                     portfolio=args.portfolio)
    checker = engine_checker
    cache = None
    if args.cache:
        from .formal import CachingPropertyChecker, VerdictCache
        cache = VerdictCache(args.cache)
        if cache.quarantined:
            print(f"warning: corrupt verdict cache quarantined to "
                  f"{cache.quarantined}; starting with an empty cache",
                  file=sys.stderr)
        checker = CachingPropertyChecker(checker, cache, need_traces=True)
    journal = None
    if args.journal:
        from .formal import VerdictJournal
        journal = VerdictJournal(args.journal, resume=args.resume)
        if args.resume and len(journal):
            print(f"resuming: {len(journal)} verdict(s) replayed from "
                  f"{args.journal}")
        if journal.quarantined_records:
            print(f"warning: {journal.quarantined_records} corrupt journal "
                  f"record(s) quarantined to {journal.quarantined}; they "
                  f"will be re-executed", file=sys.stderr)
        _install_interrupt_handlers(
            journal,
            f"rtl2uspec synth --journal {args.journal} --resume "
            f"-o {args.output}")
    candidates = args.candidates.split(",") if args.candidates else None
    try:
        result = synthesize_uspec(buggy=args.buggy, checker=checker,
                                  candidate_filter=candidates, jobs=args.jobs,
                                  journal=journal,
                                  check_timeout=args.timeout or None,
                                  formal_config=_formal_config(args.cores),
                                  compose=args.compose)
    finally:
        if journal is not None:
            journal.close()
    from .core import full_report
    print(full_report(result))
    engine_stats = engine_checker.stats
    print(f"engine: {int(engine_stats['checks'])} check(s), bitblast "
          f"{int(engine_stats['blast_hits'])} hit(s) / "
          f"{int(engine_stats['blast_misses'])} miss(es)")
    if args.profile_sat:
        import json
        profile = {key: int(engine_stats.get(key, 0))
                   for key in ("sat_solves", "sat_propagations",
                               "sat_conflicts", "sat_decisions",
                               "sat_reductions", "arena_bytes")}
        profile["sat_seconds"] = round(engine_stats.get("sat_time", 0.0), 3)
        profile["sat_core"] = args.sat_core
        for key in sorted(engine_stats):
            if key.startswith("portfolio_"):
                profile[key] = int(engine_stats[key])
        print(f"sat profile: {json.dumps(profile, sort_keys=True)}")
    # The digest is the A/B parity anchor: --compose and --monolithic
    # runs of the same design must print the same value.
    print(f"verdict digest: {result.verdict_digest()}")
    text = format_model(result.model)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"\nuspec model written to {args.output}")
    if cache is not None:
        cache.save()
        stats = cache.stats()
        print(f"verdict cache: {stats['hits']} hits, {stats['misses']} misses, "
              f"{stats['trace_reruns']} trace re-runs "
              f"({stats['entries']} entries in {args.cache})")
    if journal is not None:
        print(f"verdict journal: {len(journal)} verdict(s) in {args.journal}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import format_suite_report, run_suite, suite_report_json
    from .errors import InterruptedRun
    from .litmus import load_suite, resolve_tests

    model = _load_model(args.model)
    tests = resolve_tests(args.tests) if args.tests else load_suite()
    signal_state = _convert_sigterm()
    resume_hint = (f"rtl2uspec check --journal {args.journal} --resume"
                   + (f" --model {args.model}" if args.model else ""))
    try:
        run = run_suite(model, tests, jobs=args.jobs, engine=args.engine,
                        keep_graphs=args.show_graph,
                        budget=_check_budget(args.timeout),
                        journal_path=args.journal or None,
                        resume=args.resume,
                        fault_plan=_fault_plan(args.inject_faults),
                        sat_core=args.sat_core)
    except InterruptedRun as exc:
        if exc.partial:
            print(format_suite_report(exc.partial))
        _print_interrupt(exc, resume_hint)
        return _interrupt_exit_code(signal_state)
    verdicts = run.verdicts
    if run.resumed:
        print(f"resumed: {run.resumed} verdict(s) replayed from "
              f"{args.journal}")
    if run.quarantined_records:
        print(f"warning: {run.quarantined_records} corrupt journal "
              f"record(s) quarantined to {run.quarantined_path}; they "
              f"were re-executed", file=sys.stderr)
    print(format_suite_report(verdicts))
    if args.engine == "auto":
        print(f"engine: auto -> {run.engine_used}")
    if run.pool_stats.faults_observed():
        print(run.pool_stats.summary())
    if args.profile_sat:
        import json
        from .check import suite_sat_profile
        print(f"sat profile: "
              f"{json.dumps(suite_sat_profile(verdicts), sort_keys=True)}")
    if args.report_json:
        import json
        report = suite_report_json(verdicts, model=args.model or "reference",
                                   engine=args.engine, jobs=args.jobs,
                                   quarantined_records=run.quarantined_records,
                                   engine_used=run.engine_used,
                                   sat_core=args.sat_core,
                                   profile_sat=args.profile_sat)
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.report_json}")
    if args.show_graph:
        from .check import render_ascii
        for verdict in verdicts:
            if verdict.graph is not None:
                print(f"\n== witness µhb graph: {verdict.name} ==")
                print(render_ascii(verdict.graph))
            else:
                print(f"\n== {verdict.name}: outcome unobservable "
                      f"(no acyclic µhb graph exists) ==")
    return 0 if all(v.passed for v in verdicts) else 1


def _cmd_litmus(args: argparse.Namespace) -> int:
    from .litmus import load_suite, write_suite

    if args.export:
        paths = write_suite(args.export)
        print(f"wrote {len(paths)} .test files to {args.export}")
        return 0
    for test in load_suite():
        if args.names:
            print(test.name)
        else:
            print(test.format())
            print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .designs import DesignConfig
    from .litmus import suite_by_name
    from .rtlcheck import ExhaustiveSkewTester

    test = suite_by_name()[args.test]
    tester = ExhaustiveSkewTester(
        DesignConfig(buggy=args.buggy), max_skew=args.max_skew)
    result = tester.run_test(test)
    print(f"{test.name}: {result.runs} runs, outcome "
          f"{'OBSERVED' if result.outcome_observed else 'not observed'} "
          f"({result.time_seconds:.1f}s)")
    print(f"verdict: {'PASS' if result.passed else 'FAIL'}")
    return 0 if result.passed else 1


def _sweep_report_json(report, args) -> None:
    import json

    from .check import resolve_sweep_engine
    payload = {
        "schema": "repro-check-sweep/3",
        "engine": args.engine,
        "engine_used": resolve_sweep_engine(args.engine),
        "sat_core": args.sat_core,
        "jobs": args.jobs,
        "digest": report.digest(),
        "programs": report.programs,
        "outcomes_checked": report.outcomes_checked,
        "resumed": report.resumed,
        "quarantined_records": report.quarantined_records,
        "exact": report.exact,
        "unsound": [formatted for formatted, _ in report.unsound],
        "overstrict": [formatted for formatted, _ in report.overstrict],
        "undecided": [formatted for formatted, _ in report.undecided],
    }
    with open(args.report_json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.report_json}")


def _run_generated_sweep(model, args, signal_state, resume_hint):
    """Sweep a generated corpus: stream programs from the template
    enumerator and feed :func:`run_sweep` in chunks, so journaling
    bounds crash loss and memory stays flat at 10k+ programs.

    Chunk 2+ opens the journal with ``resume=True`` (a fresh open would
    truncate the earlier chunks' records); reports merge in enumeration
    order, so the final digest is identical to a single-shot sweep and
    to any ``--jobs`` count.
    """
    import itertools

    from .check import ExactnessReport
    from .check.exhaustive import merge_program_results, normalize_limit
    from .check.runner import run_sweep
    from .errors import InterruptedRun
    from .litmus.generator import iter_programs, parse_spec

    spec = parse_spec(args.generate)
    limit = normalize_limit(args.limit)
    chunk_size = max(1, args.chunk)
    stream = (program for _, program in iter_programs(spec))
    if limit is not None:
        stream = itertools.islice(stream, limit)
    total = ExactnessReport()
    first = True
    interrupted = None
    while True:
        chunk = list(itertools.islice(stream, chunk_size))
        if not chunk:
            break
        resume = args.resume if first else True
        first = False
        try:
            report = run_sweep(
                model, programs=chunk, jobs=args.jobs, engine=args.engine,
                budget=_check_budget(args.timeout),
                journal_path=args.journal or None, resume=resume,
                fault_plan=_fault_plan(args.inject_faults),
                sat_core=args.sat_core)
        except InterruptedRun as exc:
            report = exc.partial
            interrupted = exc
        total.programs += report.programs
        total.resumed += report.resumed
        total.quarantined_records += report.quarantined_records
        total.quarantined_path = report.quarantined_path or \
            total.quarantined_path
        merge_program_results(
            total, [(report.outcomes_checked, report.unsound,
                     report.overstrict, report.undecided)])
        if interrupted is not None:
            print(total.summary())
            _print_interrupt(interrupted, resume_hint)
            return None, _interrupt_exit_code(signal_state)
    return total, None


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .check import verify_exactness
    from .errors import InterruptedRun

    model = _load_model(args.model)
    signal_state = _convert_sigterm()
    resume_hint = (f"rtl2uspec sweep --journal {args.journal} --resume"
                   + (f" --generate {args.generate}" if args.generate else "")
                   + (f" --model {args.model}" if args.model else ""))
    if args.generate:
        report, exit_code = _run_generated_sweep(model, args, signal_state,
                                                 resume_hint)
        if report is None:
            return exit_code
    else:
        try:
            report = verify_exactness(
                model, max_threads=args.threads, max_len=args.length,
                limit=args.limit,
                jobs=args.jobs, engine=args.engine,
                budget=_check_budget(args.timeout),
                journal_path=args.journal or None, resume=args.resume,
                fault_plan=_fault_plan(args.inject_faults),
                sat_core=args.sat_core)
        except InterruptedRun as exc:
            print(exc.partial.summary())
            _print_interrupt(exc, resume_hint)
            return _interrupt_exit_code(signal_state)
    if report.quarantined_records:
        print(f"warning: {report.quarantined_records} corrupt journal "
              f"record(s) quarantined to {report.quarantined_path}; they "
              f"were re-executed", file=sys.stderr)
    print(report.summary())
    if args.report_json:
        _sweep_report_json(report, args)
    for kind, entries in (("UNSOUND", report.unsound),
                          ("OVERSTRICT", report.overstrict),
                          ("UNDECIDED", report.undecided)):
        for formatted, _condition in entries[:args.show]:
            print(f"--- {kind} ---")
            print(formatted)
    return 0 if report.exact else 1


def _format_program_line(name: str, program) -> str:
    """One-line rendering of a generated program for streaming output."""
    threads = []
    for thread in program:
        parts = []
        for access in thread:
            if access.kind == "W":
                parts.append(f"st {access.addr} {access.value}")
            elif access.kind == "F":
                parts.append("fence")
            else:
                parts.append(f"ld {access.reg} {access.addr}")
        threads.append("; ".join(parts))
    return f"{name}  " + " || ".join(threads)


def _cmd_generate(args: argparse.Namespace) -> int:
    import hashlib
    import itertools
    import os

    from .litmus.generator import iter_programs, iter_tests, parse_spec

    spec = parse_spec(args.spec)
    count = args.count if args.count > 0 else None
    acc = hashlib.sha256()
    emitted = 0
    if args.export:
        os.makedirs(args.export, exist_ok=True)
    if args.tests or args.export:
        stream = iter_tests(spec)
        if count is not None:
            stream = itertools.islice(stream, count)
        for test in stream:
            emitted += 1
            fingerprint = test.name[len("gen-"):]
            acc.update(fingerprint.encode("utf-8"))
            acc.update(b"\n")
            if args.export:
                path = os.path.join(args.export, f"{test.name}.test")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(test.format() + "\n")
            elif args.names:
                print(test.name)
            else:
                print(test.format())
                print()
        what = "test(s)"
    else:
        stream = iter_programs(spec)
        if count is not None:
            stream = itertools.islice(stream, count)
        for fingerprint, program in stream:
            emitted += 1
            acc.update(fingerprint.encode("utf-8"))
            acc.update(b"\n")
            name = f"gen-{fingerprint}"
            if args.names:
                print(name)
            else:
                print(_format_program_line(name, program))
        what = "program(s)"
    digest = acc.hexdigest()
    print(f"generated {emitted} {what} ({spec.describe()}), "
          f"corpus digest {digest}", file=sys.stderr)
    if count is not None and emitted < count:
        print(f"error: corpus exhausted at {emitted}/{count} {what} — "
              f"widen the spec (more threads/len/addrs/values or "
              f"fences=enum)", file=sys.stderr)
        return 2
    return 0


def _cmd_bugmatrix(args: argparse.Namespace) -> int:
    from .bugmatrix import format_matrix, matrix_json, run_bugmatrix

    designs = [name for name in args.designs.split(",") if name] \
        if args.designs else None
    matrix = run_bugmatrix(designs=designs, bound=args.bound,
                           max_k=args.max_k, max_skew=args.max_skew)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(matrix_json(matrix))
        print(f"matrix written to {args.out}")
    if args.json:
        print(matrix_json(matrix), end="")
    else:
        print(format_matrix(matrix))
    return 0 if matrix["ok"] else 1


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from .check import format_suite_report
    from .errors import InterruptedRun
    from .pipeline import PipelineConfig, run_pipeline

    signal_state = _convert_sigterm()
    config = PipelineConfig(
        state_dir=args.state_dir, design=args.design, resume=args.resume,
        jobs=args.jobs, engine=args.engine,
        check_timeout=args.timeout or None,
        synth_timeout=args.synth_timeout or None,
        bound=args.bound if args.bound > 0 else None,
        max_k=args.max_k if args.max_k >= 0 else None,
        candidates=args.candidates.split(",") if args.candidates else None,
        echo=print,
    )
    resume_hint = (f"rtl2uspec pipeline --state-dir {args.state_dir} "
                   f"--design {args.design} --resume")
    try:
        result = run_pipeline(config)
    except InterruptedRun as exc:
        _print_interrupt(exc, resume_hint)
        return _interrupt_exit_code(signal_state)
    print(format_suite_report(result.verdicts, show_stats=False))
    print(f"pipeline complete: model {result.model_path}, "
          f"report {result.report_path} (digest {result.digest[:12]})")
    if result.stages_resumed:
        print(f"stages served from checkpoints: "
              f"{', '.join(result.stages_resumed)}")
    return 0 if result.passed else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from .designs import SIM_CONFIG, load_design, load_single_core

    single = load_single_core().stats()
    multi = load_design(SIM_CONFIG).stats()
    print(f"{'':<16}{'1 core':>12}{'4 cores':>12}")
    for key in ("wires", "cells", "registers", "memories", "dff_bits",
                "memory_bits"):
        print(f"{key:<16}{single[key]:>12}{multi[key]:>12}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .resilience import BackoffSchedule
    from .service import Daemon, ServeConfig, parse_chaos_spec

    chaos = parse_chaos_spec(args.inject_chaos) if args.inject_chaos \
        else None
    backoff = BackoffSchedule(jitter=args.respawn_jitter,
                              seed=chaos.seed if chaos else 0) \
        if args.respawn_jitter > 0 else BackoffSchedule()
    config = ServeConfig(
        state_dir=args.state_dir,
        socket_path=args.socket or None,
        workers=args.workers,
        max_queue=args.max_queue,
        max_attempts=args.max_attempts,
        hang_timeout=args.hang_timeout,
        job_deadline=args.job_deadline or None,
        recycle_after=args.recycle_after,
        backoff=backoff,
        store_root=args.store_root or None,
        chaos=chaos,
    )
    return Daemon(config).run()


def _service_client(args: argparse.Namespace):
    from .service import ServiceClient, default_socket_path

    return ServiceClient(args.socket or default_socket_path(args.state_dir))


def _print_job_result(response: dict) -> int:
    import json

    print(json.dumps(response, indent=2, sort_keys=True))
    state = response.get("state")
    if state == "done":
        return 0
    return 1 if state == "unknown" else 2


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _service_client(args)
    params = {}
    if args.kind in ("parse", "synth", "bench"):
        params["design"] = args.design
    if args.kind == "bench":
        params["workload"] = args.workload
        if args.repeat > 0:
            params["repeat"] = args.repeat
    if args.kind == "synth":
        if args.bound > 0:
            params["bound"] = args.bound
        if args.max_k >= 0:
            params["max_k"] = args.max_k
    if args.kind in ("check", "sweep") and args.model:
        with open(args.model, "r", encoding="utf-8") as handle:
            params["model_text"] = handle.read()
    if args.kind in ("check", "bench") and args.tests:
        params["tests"] = args.tests.split(",")
    if args.kind == "sweep":
        params["threads"] = args.threads
        params["length"] = args.length
        if args.limit > 0:
            params["limit"] = args.limit
        if args.generate:
            params["generate"] = args.generate
    if args.kind in ("check", "sweep") and args.shards > 0:
        params["shards"] = args.shards
    if args.kind == "generate":
        if args.spec:
            params["spec"] = args.spec
        if args.count > 0:
            params["count"] = args.count
    if args.kind in ("synth", "check", "sweep", "bench"):
        if args.engine:
            params["engine"] = args.engine
        if args.timeout > 0:
            params["timeout"] = args.timeout
    job = client.submit(args.kind, params)
    print(f"submitted {job} ({args.kind})")
    if not args.wait:
        return 0
    return _print_job_result(client.wait(job, timeout=args.wait_timeout,
                                         down_grace=args.down_grace))


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    client = _service_client(args)
    status = client.status(args.job or None)
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    client = _service_client(args)
    if args.wait:
        return _print_job_result(client.wait(args.job,
                                             timeout=args.wait_timeout,
                                             down_grace=args.down_grace))
    response = client.result(args.job)
    if response.get("pending"):
        print(f"{args.job}: still {response['state']} "
              f"(re-run with --wait to block)")
        return 3
    return _print_job_result(response)


def _cmd_cache(args: argparse.Namespace) -> int:
    import json
    import os

    from .service import ArtifactStore

    root = args.store or os.path.join(args.state_dir, "store")
    with ArtifactStore(root) as store:
        if args.action == "stats":
            print(json.dumps(store.stats(), indent=2, sort_keys=True))
            return 0
        if args.action == "verify":
            outcome = store.verify()
            print(f"verified {outcome['checked']} entr(ies): "
                  f"{outcome['ok']} ok, {outcome['quarantined']} "
                  f"quarantined")
            for path in store.quarantined:
                print(f"  quarantined: {path}", file=sys.stderr)
            return 0 if not outcome["quarantined"] else 1
        # gc
        max_bytes = args.max_bytes
        if max_bytes is None:
            print("error: gc needs --max-bytes", file=sys.stderr)
            return 2
        outcome = store.gc(max_bytes)
        print(f"evicted {outcome['evicted']} entr(ies) "
              f"({outcome['freed_bytes']} bytes freed, "
              f"{outcome['swept_tmp']} stale temp file(s) swept); "
              f"{outcome['remaining_bytes']} bytes remain")
        return 0


def _add_service_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--state-dir", default="serve-state",
                        help="daemon state directory (ledger, store, "
                             "artifacts, socket)")
    parser.add_argument("--socket", default="",
                        help="socket path override (default: "
                             "<state-dir>/serve.sock)")


def _add_resilience_flags(parser: argparse.ArgumentParser,
                          what: str) -> None:
    """The shared --journal/--resume/--timeout/--inject-faults flags."""
    parser.add_argument("--journal", default="",
                        help=f"append-only {what} journal (JSONL) for "
                             f"crash/Ctrl-C checkpointing")
    parser.add_argument("--resume", action="store_true",
                        help="replay an existing --journal instead of "
                             "starting it fresh (already-decided work is "
                             "not re-executed)")
    parser.add_argument("--timeout", type=float, default=0.0,
                        help=f"per-{what} wall-clock budget in seconds "
                             f"(0 = unlimited; exhaustion yields a "
                             f"conservative TIMEOUT verdict, never a PASS)")
    parser.add_argument("--inject-faults", default="",
                        help="deterministic fault injection for resilience "
                             "testing, e.g. 'crash:0,hang:3' "
                             "(kinds: crash/hang/garbage/interrupt; "
                             "verdicts are unaffected)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rtl2uspec",
        description="rtl2uspec reproduction: synthesize uspec models from "
                    "RTL and verify memory-model implementations")
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_synth = sub.add_parser("synth", help="synthesize a uspec model")
    p_synth.add_argument("-o", "--output", default="multi_vscale.uarch")
    p_synth.add_argument("--buggy", action="store_true",
                         help="use the section-6.1 buggy design variant")
    p_synth.add_argument("--bound", type=int, default=12)
    p_synth.add_argument("--max-k", type=int, default=2)
    p_synth.add_argument("--candidates", default="",
                         help="comma-separated state elements to restrict analysis")
    p_synth.add_argument("--cores", type=int, choices=_FORMAL_CONFIGS,
                         default=2,
                         help="formal design core count (the simulation/"
                              "DFG side always uses the 4-core config)")
    synth_mode = p_synth.add_mutually_exclusive_group()
    synth_mode.add_argument("--compose", action="store_true",
                            help="hierarchical compositional synthesis: "
                                 "per-module obligation graphs with "
                                 "assume-guarantee interfaces and module-"
                                 "granularity caching (verdict digest and "
                                 ".uarch output match --monolithic)")
    synth_mode.add_argument("--monolithic", action="store_true",
                            help="flatten-then-prove discharge over the "
                                 "whole design (the default)")
    p_synth.add_argument("--cache", default="",
                         help="verdict-cache JSON file (repeat runs become fast)")
    p_synth.add_argument("--journal", default="",
                         help="append-only verdict journal (JSONL) for "
                              "crash/Ctrl-C checkpointing")
    p_synth.add_argument("--resume", action="store_true",
                         help="replay an existing --journal instead of "
                              "starting it fresh (already-decided SVAs are "
                              "not re-executed)")
    p_synth.add_argument("--timeout", type=float, default=0.0,
                         help="per-SVA wall-clock budget in seconds "
                              "(0 = unlimited; exhaustion yields a "
                              "conservative UNKNOWN verdict)")
    p_synth.add_argument("-j", "--jobs", type=int, default=0,
                         help=JOBS_HELP)
    p_synth.add_argument("--engine", choices=("incremental", "oneshot"),
                         default="incremental",
                         help="formal execution strategy: 'incremental' "
                              "retains one solver per SVA across BMC frames "
                              "and induction depths; 'oneshot' is the "
                              "historical fresh-solver path kept for A/B "
                              "runs (verdicts and the emitted model are "
                              "identical)")
    p_synth.add_argument("--sat-core", choices=("arena", "object"),
                         default="arena",
                         help="CDCL clause representation: 'arena' packs "
                              "clauses into one flat literal arena; "
                              "'object' is the historical per-clause-list "
                              "core (decision/conflict trajectories are "
                              "bit-identical)")
    p_synth.add_argument("--portfolio", type=int, default=1,
                         help="race N diversified solver configs per "
                              "property via worker processes; first "
                              "finisher wins (verdict digest unchanged; "
                              "1 = off)")
    p_synth.add_argument("--profile-sat", action="store_true",
                         help="print per-phase SAT counters "
                              "(propagations, conflicts, reductions, "
                              "arena bytes) after synthesis")
    p_synth.set_defaults(func=_cmd_synth)

    p_check = sub.add_parser("check", help="verify litmus tests against a model")
    p_check.add_argument("--model", default="",
                         help=".uarch file (default: shipped reference model)")
    p_check.add_argument("tests", nargs="*", help="test names (default: all 56)")
    p_check.add_argument("--show-graph", action="store_true",
                         help="render witness µhb graphs (text Fig. 1b)")
    p_check.add_argument("-j", "--jobs", type=int, default=1,
                         help=JOBS_HELP)
    p_check.add_argument("--engine",
                         choices=("auto", "fresh", "incremental",
                                  "incremental-seq"),
                         default="auto",
                         help="solving engine: 'fresh' grounds each test "
                              "from scratch, 'incremental' reuses one "
                              "retained solver per program, 'auto' picks "
                              "the measured-fastest for the workload "
                              "(fresh for single-condition suites); "
                              "verdict-identical either way")
    p_check.add_argument("--sat-core", choices=("arena", "object"),
                         default="arena",
                         help="CDCL clause representation (A/B flag; "
                              "verdicts identical)")
    p_check.add_argument("--profile-sat", action="store_true",
                         help="aggregate per-test SAT counters into the "
                              "report (stdout + --report-json)")
    p_check.add_argument("--report-json", default="",
                         help="write verdicts + solver stats as JSON")
    _add_resilience_flags(p_check, "test")
    p_check.set_defaults(func=_cmd_check)

    p_litmus = sub.add_parser("litmus", help="print the litmus suite")
    p_litmus.add_argument("--names", action="store_true")
    p_litmus.add_argument("--export", default="",
                          help="write the suite as .test files to a directory")
    p_litmus.set_defaults(func=_cmd_litmus)

    p_run = sub.add_parser("run", help="run a litmus test on the RTL simulator")
    p_run.add_argument("test")
    p_run.add_argument("--max-skew", type=int, default=2)
    p_run.add_argument("--buggy", action="store_true")
    p_run.set_defaults(func=_cmd_run)

    p_gen = sub.add_parser(
        "generate",
        help="stream a template-generated litmus corpus (TriCheck-style "
             "enumerator; deduped, deterministically named gen-<fp>)")
    p_gen.add_argument("spec", nargs="?", default="threads=2,len=2",
                       help="corpus spec, e.g. "
                            "'threads=2,len=3,addrs=2,values=2,"
                            "fences=enum,kind=safe' (all keys optional)")
    p_gen.add_argument("--count", type=int, default=0,
                       help="stop after N items (0 = stream the whole "
                            "corpus); delivering fewer than N exits 2")
    p_gen.add_argument("--tests", action="store_true",
                       help="emit full litmus tests (program + final "
                            "condition) instead of programs")
    p_gen.add_argument("--names", action="store_true",
                       help="print deterministic gen-<fingerprint> names "
                            "only")
    p_gen.add_argument("--export", default="",
                       help="write tests as .test files to a directory "
                            "(implies --tests)")
    p_gen.set_defaults(func=_cmd_generate)

    p_bug = sub.add_parser(
        "bugmatrix",
        help="seeded-bug detection matrix: every RTL bug variant must be "
             "caught at synthesis (refuted SVA) or check time (forbidden "
             "litmus outcome observed); the clean design by neither")
    p_bug.add_argument("--designs", default="",
                       help="comma-separated variant subset (default: "
                            "clean,decoder,mcm,arbiter,drop,bypass)")
    p_bug.add_argument("--out", default="",
                       help="write the JSON detection matrix to this path")
    p_bug.add_argument("--json", action="store_true",
                       help="print the JSON matrix instead of the table")
    p_bug.add_argument("--bound", type=int, default=10,
                       help="BMC bound for the synthesis-stage SVA slice")
    p_bug.add_argument("--max-k", type=int, default=2,
                       help="induction depth for the synthesis-stage slice")
    p_bug.add_argument("--max-skew", type=int, default=1,
                       help="per-core start-skew bound for the check stage")
    p_bug.set_defaults(func=_cmd_bugmatrix)

    p_sweep = sub.add_parser(
        "sweep", help="exhaustive small-program exactness sweep (PipeProof-style)")
    p_sweep.add_argument("--model", default="")
    p_sweep.add_argument("--threads", type=int, default=2)
    p_sweep.add_argument("--length", type=int, default=2)
    p_sweep.add_argument("--limit", type=int, default=0,
                         help="bound the number of programs (0 = all)")
    p_sweep.add_argument("--generate", default="",
                         help="sweep a generated corpus instead of the "
                              "built-in shape enumeration: a corpus spec "
                              "like 'threads=2,len=3,fences=enum' "
                              "(--threads/--length are ignored; --limit "
                              "caps the corpus prefix)")
    p_sweep.add_argument("--chunk", type=int, default=500,
                         help="programs per run_sweep chunk with "
                              "--generate (journaling bounds crash loss; "
                              "digest is chunk-size invariant)")
    p_sweep.add_argument("--show", type=int, default=3,
                         help="mismatching tests to print")
    p_sweep.add_argument("-j", "--jobs", type=int, default=1,
                         help=JOBS_HELP)
    p_sweep.add_argument("--engine",
                         choices=("auto", "fresh", "incremental",
                                  "incremental-seq"),
                         default="incremental",
                         help="per-program decision procedure: "
                              "incremental amortizes grounding across a "
                              "program's conditions and batches its "
                              "solves ('incremental-seq' disables the "
                              "batching for A/B runs; 'auto' = "
                              "incremental); verdict-identical")
    p_sweep.add_argument("--sat-core", choices=("arena", "object"),
                         default="arena",
                         help="CDCL clause representation (A/B flag; "
                              "verdicts identical)")
    p_sweep.add_argument("--report-json", default="",
                         help="write the sweep report as JSON")
    _add_resilience_flags(p_sweep, "condition")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_pipe = sub.add_parser(
        "pipeline",
        help="end-to-end parse -> synth -> check with crash-safe stage "
             "checkpoints (kill it anywhere; --resume continues)")
    p_pipe.add_argument("--state-dir", default="pipeline-state",
                        help="directory for stage checkpoints, journals, "
                             "and final artifacts")
    p_pipe.add_argument("--design", choices=("multi", "unicore"),
                        default="multi",
                        help="bundled design: the 4-core multi-V-scale "
                             "case study or the fast scoped unicore")
    p_pipe.add_argument("--resume", action="store_true",
                        help="continue from the state directory's last "
                             "checkpoint (stages and journaled work are "
                             "not re-executed; final artifacts are "
                             "byte-identical to an uninterrupted run)")
    p_pipe.add_argument("-j", "--jobs", type=int, default=1,
                        help=JOBS_HELP)
    p_pipe.add_argument("--engine", choices=("fresh", "incremental"),
                        default="fresh",
                        help="check-stage solving engine (verdict-identical)")
    p_pipe.add_argument("--timeout", type=float, default=0.0,
                        help="per-litmus-test wall-clock budget in seconds "
                             "(0 = unlimited)")
    p_pipe.add_argument("--synth-timeout", type=float, default=0.0,
                        help="per-SVA wall-clock budget in seconds "
                             "(0 = unlimited)")
    p_pipe.add_argument("--bound", type=int, default=0,
                        help="BMC bound for synthesis (0 = design preset)")
    p_pipe.add_argument("--max-k", type=int, default=-1,
                        help="induction depth for synthesis "
                             "(-1 = design preset)")
    p_pipe.add_argument("--candidates", default="",
                        help="comma-separated state elements to restrict "
                             "analysis (default: design preset)")
    p_pipe.set_defaults(func=_cmd_pipeline)

    p_stats = sub.add_parser("stats", help="design statistics (section 5.1)")
    p_stats.set_defaults(func=_cmd_stats)

    p_serve = sub.add_parser(
        "serve",
        help="persistent verification daemon: warm workers, a crash-safe "
             "job ledger, and a persistent verdict/bitblast store "
             "(kill -9 safe; clients use submit/status/result)")
    _add_service_flags(p_serve)
    p_serve.add_argument("--workers", type=int, default=1,
                         help="warm worker processes")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="queued-job admission limit; past it, "
                              "submissions are refused with 'queue-full' "
                              "(backpressure, never unbounded buffering)")
    p_serve.add_argument("--max-attempts", type=int, default=3,
                         help="dispatch attempts per job before a "
                              "crash-looping job is recorded failed")
    p_serve.add_argument("--hang-timeout", type=float, default=60.0,
                         help="seconds without a worker heartbeat before "
                              "it is declared hung and recycled")
    p_serve.add_argument("--job-deadline", type=float, default=0.0,
                         help="per-job wall-clock ceiling in seconds; "
                              "expiry degrades the job to a first-class "
                              "UNKNOWN (0 = unlimited)")
    p_serve.add_argument("--recycle-after", type=int, default=0,
                         help="retire each worker after N jobs to bound "
                              "leak accumulation (0 = never)")
    p_serve.add_argument("--store-root", default="",
                         help="artifact store root override; two daemons "
                              "with separate state dirs may safely share "
                              "one store this way (default: "
                              "<state-dir>/store)")
    p_serve.add_argument("--respawn-jitter", type=float, default=0.0,
                         help="opt-in deterministic seeded jitter "
                              "fraction on worker respawn backoff "
                              "(0 = byte-identical classic schedule)")
    p_serve.add_argument("--inject-chaos", default="",
                         help="seeded replayable service fault plan, "
                              "e.g. 'seed=7,kill%%=20,daemon-kill:3,"
                              "store-budget=4096' (see docs/service.md)")
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a job to a running serve daemon")
    p_submit.add_argument("kind",
                          choices=("parse", "synth", "check", "sweep",
                                   "generate", "bench"))
    _add_service_flags(p_submit)
    p_submit.add_argument("--design", choices=("multi", "unicore"),
                          default="multi", help="design for parse/synth")
    p_submit.add_argument("--model", default="",
                          help=".uarch file for check/sweep (default: "
                               "shipped reference model)")
    p_submit.add_argument("--tests", default="",
                          help="comma-separated litmus test names for "
                               "check (default: all 56)")
    p_submit.add_argument("--bound", type=int, default=0,
                          help="synth BMC bound (0 = design preset)")
    p_submit.add_argument("--max-k", type=int, default=-1,
                          help="synth induction depth (-1 = preset)")
    p_submit.add_argument("--threads", type=int, default=2,
                          help="sweep thread count")
    p_submit.add_argument("--length", type=int, default=2,
                          help="sweep max program length")
    p_submit.add_argument("--limit", type=int, default=0,
                          help="sweep program limit (0 = all)")
    p_submit.add_argument("--shards", type=int, default=0,
                          help="check/sweep: split the job into N "
                               "deterministic stripes dispatched across "
                               "idle workers; the merged report is "
                               "byte-identical to a single-worker run "
                               "(0 = unsharded)")
    p_submit.add_argument("--generate", default="",
                          help="sweep: sweep a generated corpus spec "
                               "instead of the built-in shape "
                               "enumeration (needs --limit)")
    p_submit.add_argument("--workload", choices=("check", "synth"),
                          default="check",
                          help="bench: workload to time on the warm "
                               "fleet")
    p_submit.add_argument("--repeat", type=int, default=0,
                          help="bench: repetitions (repeat >= 2 shows "
                               "warm-cache effects; 0 = kind default)")
    p_submit.add_argument("--spec", default="",
                          help="generate: corpus spec "
                               "(e.g. 'threads=2,len=3,fences=enum')")
    p_submit.add_argument("--count", type=int, default=0,
                          help="generate: corpus item cap (0 = kind "
                               "default)")
    p_submit.add_argument("--engine", default="",
                          help="solver engine (kind-specific default)")
    p_submit.add_argument("--timeout", type=float, default=0.0,
                          help="per-obligation solver budget in seconds")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job finishes and print "
                               "its result")
    p_submit.add_argument("--wait-timeout", type=float, default=600.0,
                          help="seconds to wait with --wait")
    p_submit.add_argument("--down-grace", type=float, default=60.0,
                          help="with --wait: seconds to tolerate an "
                               "unreachable daemon (rides through "
                               "restarts)")
    p_submit.set_defaults(func=_cmd_submit)

    p_status = sub.add_parser(
        "status", help="daemon/queue/fleet/store status (or one job's)")
    _add_service_flags(p_status)
    p_status.add_argument("--job", default="", help="job id to inspect")
    p_status.set_defaults(func=_cmd_status)

    p_result = sub.add_parser(
        "result", help="fetch a submitted job's terminal result")
    p_result.add_argument("job", help="job id")
    _add_service_flags(p_result)
    p_result.add_argument("--wait", action="store_true",
                          help="block until the job reaches a terminal "
                               "state (tolerates daemon restarts)")
    p_result.add_argument("--wait-timeout", type=float, default=600.0,
                          help="seconds to wait with --wait")
    p_result.add_argument("--down-grace", type=float, default=60.0,
                          help="with --wait: seconds to tolerate an "
                               "unreachable daemon (rides through "
                               "restarts)")
    p_result.set_defaults(func=_cmd_result)

    p_cache = sub.add_parser(
        "cache", help="inspect/verify/gc the persistent artifact store")
    p_cache.add_argument("action", choices=("stats", "verify", "gc"))
    _add_service_flags(p_cache)
    p_cache.add_argument("--store", default="",
                         help="store root override (default: "
                              "<state-dir>/store)")
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         help="gc: evict least-recently-used entries "
                              "until the store fits this many bytes")
    p_cache.set_defaults(func=_cmd_cache)

    args = parser.parse_args(argv)
    from .errors import ReproError
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro generate | head`):
        # conventional silent exit.  Detach stdout so the interpreter's
        # shutdown flush doesn't raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
