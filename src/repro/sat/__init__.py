"""From-scratch SAT solving: CNF construction, CDCL search, DIMACS I/O.

This package is the decision-procedure substrate for the formal property
checker (``repro.formal``), which replaces the commercial JasperGold
model checker used in the paper.

Two interchangeable CDCL cores decide every query (bit-identical search
trajectories, pinned by the fuzz suite):

* ``core="arena"`` (the default) — :class:`ArenaSolver`, clauses packed
  into one flat literal arena with (offset, size, LBD) headers and
  watchlists of integer clause refs;
* ``core="object"`` — :class:`Solver`, the historical per-clause
  Python-list representation, kept for A/B benchmarking exactly like
  the ``order="scan"`` branch-order baseline.

Use :func:`make_solver` to construct by name.
"""

from ..errors import SatError
from .arena import ArenaSolver
from .cnf import Cnf, neg
from .dimacs import read_dimacs, write_dimacs
from .solver import SAT, UNKNOWN, UNSAT, Solver, luby, solve_cnf

#: valid values for the ``core=`` A/B flag, default first
CORES = ("arena", "object")


def make_solver(order: str = "heap", core: str = "arena",
                phase_seed: int = 0):
    """Construct a CDCL core by name.

    ``order`` picks the branch ordering (``heap``/``scan``), ``core``
    the clause representation (``arena``/``object``); every combination
    produces the same search trajectory.  ``phase_seed`` perturbs the
    initial saved phases (portfolio diversification; 0 = historical
    all-False init).
    """
    if core == "arena":
        return ArenaSolver(order=order, phase_seed=phase_seed)
    if core == "object":
        return Solver(order=order, phase_seed=phase_seed)
    raise SatError(f"unknown solver core {core!r} "
                   f"(expected one of {CORES})")


__all__ = [
    "Cnf",
    "neg",
    "Solver",
    "ArenaSolver",
    "make_solver",
    "CORES",
    "solve_cnf",
    "luby",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "read_dimacs",
    "write_dimacs",
]
