"""From-scratch SAT solving: CNF construction, CDCL search, DIMACS I/O.

This package is the decision-procedure substrate for the formal property
checker (``repro.formal``), which replaces the commercial JasperGold
model checker used in the paper.
"""

from .cnf import Cnf, neg
from .dimacs import read_dimacs, write_dimacs
from .solver import SAT, UNKNOWN, UNSAT, Solver, luby, solve_cnf

__all__ = [
    "Cnf",
    "neg",
    "Solver",
    "solve_cnf",
    "luby",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "read_dimacs",
    "write_dimacs",
]
