"""Packed-arena CDCL core: the same search, flat storage.

:class:`ArenaSolver` is a drop-in replacement for the per-clause-object
:class:`repro.sat.solver.Solver` with identical public API, counters,
and — critically — **bit-identical search trajectories** (same
decisions, conflicts, propagations, learned clauses, models) for any
call sequence.  The fuzz suite pins this equivalence; the ``core=
"arena"|"object"`` A/B flag on the engine and check layers rides on it
the same way PR 4's ``order="heap"|"scan"`` flag did.

Memory layout::

    arena     flat list  |c0_l0 c0_l1 ... | c1_l0 c1_l1 ... | ...
    c_offset  list[int]  per-clause start index into ``arena``
    c_size    list[int]  per-clause literal count
    c_lbd     list[int]  LBD recorded at learn time (0 for problem clauses)
    watches   list-of-lists indexed directly by literal (negative lits
              via negative indexing, like ``_litval``) holding integer
              clause *refs* (indices into the header arrays)
    reason    list[int], -1 = decision/assumption, else a clause ref
    trail / trail_lim / assign / level / phase / activity  flat lists

The arena and headers are flat Python lists rather than ``array('i')``:
CPython's ``array.__getitem__`` allocates a fresh int object on every
read outside the small-int cache, which on literal-heavy workloads costs
more than the packed layout saves; a list stores the boxed int once and
hands back the same object.  (Measured on PHP(9,8): list arena ~1.55×
the object core, ``array('i')`` arena ~1.35×.)  The layout is otherwise
exactly the classic packed arena.

A clause ref never changes: arena compaction (triggered when removed
learned clauses leave more than half the arena as garbage) rewrites only
the literal arena and the ``c_offset`` entries, so watchlists and reason
pointers survive untouched.  Removed clauses' header slots leak three
ints apiece — bounded by the learned-clause churn and recycled wholesale
when the solver is dropped.

What the flat layout removes from the hot path, relative to the object
core: the per-propagation ``dict`` watchlist lookups (direct
literal-indexed list reads instead), the fresh ``new_watchlist`` allocation per
propagated literal (in-place compaction with a write index), the
``_value()`` method call per literal scanned (inlined sign-aware
literal-indexed truth reads), and per-clause Python list objects (one
flat arena).
"""

from __future__ import annotations

import heapq
import time
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import SatError
from .cnf import Cnf
from .solver import (
    SAT,
    UNKNOWN,
    UNSAT,
    BatchedSolveMixin,
    VsidsHeapMixin,
    luby,
)

#: reason sentinel: the variable is a decision or assumption
NO_REASON = -1


class ArenaSolver(VsidsHeapMixin, BatchedSolveMixin):
    """CDCL over DIMACS-style integer literals, packed-arena storage.

    Public surface matches :class:`repro.sat.solver.Solver`: the
    attributes ``ok / conflicts / decisions / propagations / reductions /
    conflict_assumptions / restart_base / reduce_db_threshold`` and the
    methods ``add_clause / add_cnf / solve / solve_batch / model_value /
    model``.  ``clauses`` and ``learned`` hold integer clause refs here
    (the object core holds literal lists); only the fuzz/diagnostic
    tooling looks inside.
    """

    def __init__(self, order: str = "heap", phase_seed: int = 0):
        if order not in ("heap", "scan"):
            raise SatError(f"unknown branch order {order!r}")
        self.phase_seed = phase_seed
        self.num_vars = 0
        #: flat literal arena (see module docstring for why a list)
        self.arena: List[int] = []
        self.c_offset: List[int] = []
        self.c_size: List[int] = []
        self.c_lbd: List[int] = []
        # Literal-indexed truth values (1 true, -1 false, 0 unassigned):
        # _litval[lit] works for negative lits via Python's negative
        # indexing over a (2*num_vars+1)-slot list, turning the hot
        # sign-aware assignment read into a single list access.  Kept in
        # lockstep with ``assign``; rebuilt when the variable count grows.
        self._litval: List[int] = [0]
        #: problem / learned clause refs (indices into the header arrays)
        self.clauses: List[int] = []
        self.learned: List[int] = []
        # Watchlists indexed directly by literal over a (2*num_vars+1)-
        # slot list, exactly like ``_litval``: ``watches[lit]`` works for
        # negative literals via negative indexing, so the hot path never
        # computes a watch code.  Slot 0 pads var 0; growth relocates
        # the halves by slice (the list objects move by reference, so
        # existing watchlists survive).
        self.watches: List[List[int]] = [[]]
        self.assign: List[int] = [0]  # 0 unassigned, 1 true, -1 false; 1-based
        self.level: List[int] = [0]
        self.reason: List[int] = [NO_REASON]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.activity: List[float] = [0.0]
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.phase: List[bool] = [False]
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.reductions = 0
        self.batch_shared_levels = 0
        self.batch_assumption_levels = 0
        #: arena slots owned by removed clauses, reclaimed by _compact
        self.garbage = 0
        self.max_conflicts: Optional[int] = None
        self.reduce_db_threshold = 2000
        self.restart_base = 64
        self.order = order
        self._use_heap = order == "heap"
        self._heap: List[Tuple[float, int]] = []
        self.conflict_assumptions: List[int] = []
        self._seen: List[int] = [0]

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def _ensure_var(self, var: int) -> None:
        if var <= self.num_vars:
            return
        old = self.num_vars
        grow = var - old
        self.assign.extend([0] * grow)
        self.level.extend([0] * grow)
        self.reason.extend([NO_REASON] * grow)
        self.activity.extend([0.0] * grow)
        self._seen.extend([0] * grow)
        self.phase.extend(self._initial_phase(v)
                          for v in range(old + 1, var + 1))
        watches = self.watches
        grown = watches[:old + 1]
        grown.extend([] for _ in range(grow))  # positives old+1..var
        grown.extend([] for _ in range(grow))  # negatives -var..-(old+1)
        grown.extend(watches[old + 1:])        # negatives -old..-1
        self.watches = grown
        self.num_vars = var
        if self._use_heap:
            for v in range(old + 1, var + 1):
                self._heap_insert(v)
        # Negative indexing pins every slot's meaning to the list
        # length, so growth rebuilds the table — via slice copies: the
        # positive half keeps its positions, the negative half keeps
        # its distance from the end (callers add variables in bulk —
        # add_cnf / _feed_solver ensure the max var first).
        litval = [0] * (2 * var + 1)
        prev = self._litval
        if old:
            litval[:old + 1] = prev[:old + 1]
            litval[-old:] = prev[-old:]
        self._litval = litval

    def _alloc(self, lits: List[int], lbd: int = 0) -> int:
        ref = len(self.c_offset)
        self.c_offset.append(len(self.arena))
        self.c_size.append(len(lits))
        self.c_lbd.append(lbd)
        self.arena.extend(lits)
        return ref

    def _watch_clause(self, ref: int) -> None:
        off = self.c_offset[ref]
        watches = self.watches
        watches[self.arena[off]].append(ref)
        watches[self.arena[off + 1]].append(ref)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a problem clause; returns False if it is trivially conflicting.

        May be called between solve() calls (incremental use); any
        leftover search state is rolled back to decision level 0 first.
        """
        if not self.ok:
            return False
        if self.trail_lim:
            self._backtrack(0)
        # The loop below runs once per fed literal (hundreds of
        # thousands per BMC unroll), so the var-growth check is inlined
        # and the level-0 filter reads the literal-indexed table
        # directly.  trail_lim is empty here (backtracked above), so
        # every assignment seen is a level-0 fact.
        clause = []
        seen = set()
        num_vars = self.num_vars
        litval = self._litval
        for lit in lits:
            if lit == 0:
                raise SatError("literal 0 is not allowed")
            if (lit if lit > 0 else -lit) > num_vars:
                self._ensure_var(lit if lit > 0 else -lit)
                num_vars = self.num_vars
                litval = self._litval
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            # At decision level 0 we can filter by the current assignment.
            val = litval[lit]
            if val:
                if val == 1:
                    return True  # already satisfied
                continue  # already falsified at level 0 -> drop literal
            clause.append(lit)
        if not clause:
            self.ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], NO_REASON):
                self.ok = False
                return False
            if self._propagate() >= 0:
                self.ok = False
                return False
            return True
        ref = self._alloc(clause)
        self.clauses.append(ref)
        self._watch_clause(ref)
        return True

    def add_cnf(self, cnf: Cnf) -> None:
        """Add every clause of a :class:`Cnf` formula."""
        self._ensure_var(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        # litval is kept in lockstep with assign (see _ensure_var), so
        # the sign-aware read is a single negative-index-capable lookup.
        return self._litval[lit]

    def _enqueue(self, lit: int, reason: int) -> bool:
        val = self._litval[lit]
        if val == 1:
            return True
        if val == -1:
            return False
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else -1
        litval = self._litval
        litval[lit] = 1
        litval[-lit] = -1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause ref or -1.

        Mirrors the object core operation for operation — watch scan
        order, first-non-false new-watch selection, the clause[0]/[1]
        swap discipline — so the two cores visit identical conflicts.

        Each watchlist pass runs in two phases: until a watch actually
        moves, the list is unchanged and the scan writes nothing;
        compaction (shifting survivors down over freed slots) starts at
        the first move.  On the BMC workload ~85% of passes never move
        a watch, so the per-entry keep-write would be pure overhead.
        """
        arena = self.arena
        offs = self.c_offset
        sizes = self.c_size
        watches = self.watches
        assign = self.assign
        litval = self._litval
        level = self.level
        reason = self.reason
        trail = self.trail
        qhead = self.qhead
        props = 0
        conflict = NO_REASON
        level_now = len(self.trail_lim)
        ntrail = len(trail)
        while qhead < ntrail:
            lit = trail[qhead]
            qhead += 1
            props += 1
            false_lit = -lit
            wl = watches[false_lit]
            if not wl:
                continue
            i = 0
            j = -1  # -1: fast phase, nothing moved, no compaction
            n = len(wl)
            while i < n:
                ref = wl[i]
                i += 1
                off = offs[ref]
                # Normalize so arena[off+1] is the false literal.
                first = arena[off]
                if first == false_lit:
                    first = arena[off + 1]
                    arena[off] = first
                    arena[off + 1] = false_lit
                val_first = litval[first]
                if val_first == 1:
                    continue
                # Look for a new watch.
                k = off + 2
                end = off + sizes[ref]
                moved = False
                while k < end:
                    q = arena[k]
                    if litval[q] != -1:
                        arena[off + 1] = q
                        arena[k] = false_lit
                        watches[q].append(ref)
                        moved = True
                        break
                    k += 1
                if moved:
                    j = i - 1  # freed slot; compaction takes over below
                    break
                if val_first == -1:
                    conflict = ref  # list untouched so far: keep as is
                    break
                # Unit: enqueue first.
                if first > 0:
                    var = first
                    assign[var] = 1
                else:
                    var = -first
                    assign[var] = -1
                litval[first] = 1
                litval[-first] = -1
                level[var] = level_now
                reason[var] = ref
                trail.append(first)
                ntrail += 1
            if j >= 0:
                # Compaction phase: identical scan, survivors shift down.
                while i < n:
                    ref = wl[i]
                    i += 1
                    off = offs[ref]
                    first = arena[off]
                    if first == false_lit:
                        first = arena[off + 1]
                        arena[off] = first
                        arena[off + 1] = false_lit
                    val_first = litval[first]
                    if val_first == 1:
                        wl[j] = ref
                        j += 1
                        continue
                    k = off + 2
                    end = off + sizes[ref]
                    moved = False
                    while k < end:
                        q = arena[k]
                        if litval[q] != -1:
                            arena[off + 1] = q
                            arena[k] = false_lit
                            watches[q].append(ref)
                            moved = True
                            break
                        k += 1
                    if moved:
                        continue
                    wl[j] = ref
                    j += 1
                    if val_first == -1:
                        # Conflict: keep remaining watches then report.
                        while i < n:
                            wl[j] = wl[i]
                            j += 1
                            i += 1
                        conflict = ref
                        break
                    # Unit: enqueue first.
                    if first > 0:
                        var = first
                        assign[var] = 1
                    else:
                        var = -first
                        assign[var] = -1
                    litval[first] = 1
                    litval[-first] = -1
                    level[var] = level_now
                    reason[var] = ref
                    trail.append(first)
                    ntrail += 1
                del wl[j:]
            if conflict >= 0:
                break
        self.qhead = qhead
        self.propagations += props
        return conflict

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _analyze(self, conflict: int):
        """First-UIP analysis; returns (learned_clause, backtrack_level)."""
        arena = self.arena
        offs = self.c_offset
        sizes = self.c_size
        seen = self._seen
        level = self.level
        trail = self.trail
        reason = self.reason
        activity = self.activity
        var_inc = self.var_inc
        learned = [0]  # placeholder for the asserting literal
        counter = 0
        lit = 0
        ref = conflict
        index = len(trail) - 1
        current_level = len(self.trail_lim)
        while True:
            off = offs[ref]
            end = off + sizes[ref]
            if lit == 0:
                lits = arena[off:end]
            elif arena[off] == lit:
                lits = arena[off + 1:end]
            else:
                lits = [x for x in arena[off:end] if x != lit]
            for q in lits:
                var = q if q > 0 else -q
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    # Inlined VSIDS bump (the object core's _bump_var):
                    # one attribute hop per conflict instead of one
                    # method call per seen literal.
                    act = activity[var] + var_inc
                    activity[var] = act
                    if act > 1e100:
                        self._rescale_activity()
                        var_inc = self.var_inc
                    if level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Select next literal to expand from the trail.
            while True:
                lit = trail[index]
                if seen[lit if lit > 0 else -lit]:
                    break
                index -= 1
            index -= 1
            var = lit if lit > 0 else -lit
            seen[var] = 0
            counter -= 1
            if counter == 0:
                learned[0] = -lit
                break
            ref = reason[var]
            assert ref >= 0
        # Clear the marks left on literals that stayed in the clause.
        for q in learned[1:]:
            seen[q if q > 0 else -q] = 0
        # Clause minimization: drop a literal whose reason's other
        # literals are all already (negated) in the learned clause or at
        # level 0 — the classic "local" self-subsumption test.
        learned_set = set(learned)
        reduced = [learned[0]]
        for q in learned[1:]:
            aq = q if q > 0 else -q
            rref = reason[aq]
            if rref < 0:
                reduced.append(q)
                continue
            off = offs[rref]
            end = off + sizes[rref]
            implied = True
            k = off
            while k < end:
                p = arena[k]
                k += 1
                if p != aq and p != -aq and p not in learned_set \
                        and level[p if p > 0 else -p] != 0:
                    implied = False
                    break
            if not implied:
                reduced.append(q)
        learned = reduced
        # Compute backtrack level.
        if len(learned) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learned)):
                if level[abs(learned[i])] > level[abs(learned[max_i])]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            bt_level = level[abs(learned[1])]
        return learned, bt_level

    def _clause_lbd(self, clause: Sequence[int]) -> int:
        levels = {self.level[abs(lit)] for lit in clause}
        return len(levels)

    def _backtrack(self, target_level: int) -> None:
        use_heap = self._use_heap
        heap = self._heap
        activity = self.activity
        heappush = heapq.heappush
        litval = self._litval
        phase = self.phase
        assign = self.assign
        reason = self.reason
        trail = self.trail
        trail_lim = self.trail_lim
        while len(trail_lim) > target_level:
            lim = trail_lim.pop()
            for lit in trail[lim:]:
                if lit > 0:
                    var = lit
                    phase[var] = True
                else:
                    var = -lit
                    phase[var] = False
                assign[var] = 0
                litval[lit] = 0
                litval[-lit] = 0
                reason[var] = NO_REASON
                if use_heap:
                    heappush(heap, (-activity[var], var))
            del trail[lim:]
        self.qhead = len(trail)
        if use_heap and len(heap) > 4 * self.num_vars + 16:
            self._heap_rebuild()

    # ------------------------------------------------------------------
    # Learned clause DB management
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        if len(self.learned) < self.reduce_db_threshold:
            return
        lbd = self.c_lbd
        sizes = self.c_size
        scored = sorted(self.learned, key=lambda r: (lbd[r], sizes[r]))
        keep = set(scored[: len(scored) // 2])
        locked = set()
        reason = self.reason
        for var in range(1, self.num_vars + 1):
            if reason[var] >= 0:
                locked.add(reason[var])
        removed = [r for r in self.learned
                   if r not in keep and r not in locked and sizes[r] > 2]
        if not removed:
            return
        self.reductions += 1
        removed_set = set(removed)
        self.learned = [r for r in self.learned if r not in removed_set]
        # A live clause sits in exactly the two watchlists of its first
        # two literals (the propagation invariant), so only the lists
        # actually containing removed clauses need rebuilding — not
        # every watchlist in the solver.
        arena = self.arena
        offs = self.c_offset
        touched = {}
        for ref in removed:
            off = offs[ref]
            touched.setdefault(arena[off], set()).add(ref)
            touched.setdefault(arena[off + 1], set()).add(ref)
            self.garbage += sizes[ref]
        watches = self.watches
        for lit, refs in touched.items():
            watches[lit] = [r for r in watches[lit] if r not in refs]
        if self.garbage * 2 > len(arena) and len(arena) > 1 << 16:
            self._compact()

    def _compact(self) -> None:
        """Rewrite the literal arena without the garbage left by removed
        learned clauses.  Only ``arena`` and ``c_offset`` change: clause
        refs are stable, so watchlists and reason pointers need no
        remapping (and the search trajectory is untouched)."""
        offs = self.c_offset
        sizes = self.c_size
        old = self.arena
        new: List[int] = []
        for ref in self.clauses:
            off = offs[ref]
            offs[ref] = len(new)
            new.extend(old[off:off + sizes[ref]])
        for ref in self.learned:
            off = offs[ref]
            offs[ref] = len(new)
            new.extend(old[off:off + sizes[ref]])
        self.arena = new
        self.garbage = 0

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = (), max_conflicts: Optional[int] = None,
              deadline: Optional[float] = None, keep_levels: int = 0) -> str:
        """Run CDCL search; returns SAT, UNSAT or UNKNOWN (budget hit).

        Same contract as :meth:`repro.sat.solver.Solver.solve`,
        including ``keep_levels`` batched-assumption reuse.
        """
        self.conflict_assumptions = []
        if deadline is not None and time.perf_counter() >= deadline:
            return UNKNOWN
        if not self.ok:
            return UNSAT
        if keep_levels:
            keep_levels = min(keep_levels, len(self.trail_lim))
        self._backtrack(keep_levels if keep_levels else 0)
        conflict = self._propagate()
        if conflict >= 0:
            if self.trail_lim:
                self._backtrack(0)
                conflict = self._propagate()
            if conflict >= 0:
                self.ok = False
                return UNSAT
        assumptions = list(assumptions)
        for lit in assumptions:
            self._ensure_var(abs(lit))
        conflict_budget = max_conflicts if max_conflicts is not None else self.max_conflicts
        start_conflicts = self.conflicts
        restart_num = 1
        restart_limit = self.restart_base * luby(restart_num)
        conflicts_since_restart = 0
        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self.conflicts += 1
                conflicts_since_restart += 1
                if not self.trail_lim:
                    self.ok = False
                    return UNSAT
                learned, bt_level = self._analyze(conflict)
                self._backtrack(bt_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], NO_REASON):
                        self.ok = False
                        return UNSAT
                else:
                    # Record the LBD now, while the literals still carry
                    # their conflict-time decision levels, instead of
                    # recomputing it from stale levels at reduce time.
                    ref = self._alloc(learned, lbd=self._clause_lbd(learned))
                    self.learned.append(ref)
                    self._watch_clause(ref)
                    self._enqueue(learned[0], ref)
                self.var_inc /= self.var_decay
                if conflict_budget is not None and self.conflicts - start_conflicts >= conflict_budget:
                    self._backtrack(0)
                    return UNKNOWN
                # Poll the wall clock only every 16 conflicts: a
                # perf_counter() call per conflict is measurable on the
                # hot path, and deadline precision is not.
                if deadline is not None and self.conflicts % 16 == 0 \
                        and time.perf_counter() >= deadline:
                    self._backtrack(0)
                    return UNKNOWN
                if conflicts_since_restart >= restart_limit:
                    restart_num += 1
                    restart_limit = self.restart_base * luby(restart_num)
                    conflicts_since_restart = 0
                    self._backtrack(0)
                self._reduce_db()
                continue
            # Place assumptions as pseudo-decisions first.
            if len(self.trail_lim) < len(assumptions):
                lit = assumptions[len(self.trail_lim)]
                val = self._value(lit)
                if val == 1:
                    # Already implied; introduce an empty decision level
                    # to keep the level <-> assumption index alignment.
                    self.trail_lim.append(len(self.trail))
                    continue
                if val == -1:
                    self.conflict_assumptions = self._analyze_final(lit)
                    self._backtrack(0)
                    return UNSAT
                self.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, NO_REASON)
                continue
            var = self._pick_branch_var()
            if var == 0:
                return SAT
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            lit = var if self.phase[var] else -var
            self._enqueue(lit, NO_REASON)

    def _analyze_final(self, failed_lit: int) -> List[int]:
        """Compute a set of assumptions responsible for falsifying ``failed_lit``."""
        out = [failed_lit]
        seen = set()
        stack = [abs(failed_lit)]
        arena = self.arena
        offs = self.c_offset
        sizes = self.c_size
        while stack:
            var = stack.pop()
            if var in seen:
                continue
            seen.add(var)
            ref = self.reason[var]
            if ref < 0:
                if self.level[var] > 0:
                    out.append(var if self.assign[var] == 1 else -var)
            else:
                off = offs[ref]
                for lit in arena[off:off + sizes[ref]]:
                    if abs(lit) != var:
                        stack.append(abs(lit))
        return out

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, lit: int) -> bool:
        """Value of a literal in the satisfying assignment (after SAT)."""
        val = self._value(lit)
        # Unassigned variables are don't-cares; report False.
        return val == 1

    def model(self) -> List[int]:
        """The full model as a list of literals (after SAT)."""
        out = []
        for var in range(1, self.num_vars + 1):
            out.append(var if self.assign[var] == 1 else -var)
        return out

    def arena_bytes(self) -> int:
        """Approximate bytes held by the literal arena plus the header
        lists (pointer-sized slots: the arena and headers are flat
        Python lists, see the module docstring)."""
        return 8 * (len(self.arena) + len(self.c_offset)
                    + len(self.c_size) + len(self.c_lbd))
