"""CNF formula container and literal conventions.

Literals follow the DIMACS convention: variables are positive integers
``1..n`` and a negated literal is the negated integer. Variable 0 is
reserved and never used.

:class:`Cnf` is a deliberately thin builder: the solver consumes its
clause list directly. It also provides Tseitin-style gate encodings used
by the bit-blaster so the encodings live next to the formula they build.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import SatError


def neg(lit: int) -> int:
    """Return the negation of a literal."""
    return -lit


class Cnf:
    """A growable CNF formula with helpers for common gate encodings.

    The constants :data:`Cnf.TRUE` / :data:`Cnf.FALSE` are represented by
    a dedicated variable (allocated lazily) that is asserted true by a
    unit clause; this keeps gate encodings uniform when an input happens
    to be constant.
    """

    def __init__(self):
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self._true_lit = 0

    # ------------------------------------------------------------------
    # Variables and clauses
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable and return its positive literal."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add one clause (an iterable of non-zero literals)."""
        clause = list(lits)
        for lit in clause:
            if lit == 0 or abs(lit) > self.num_vars:
                raise SatError(f"literal {lit} out of range (num_vars={self.num_vars})")
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    @property
    def true_lit(self) -> int:
        """A literal constrained to be true (allocated on first use)."""
        if self._true_lit == 0:
            self._true_lit = self.new_var()
            self.clauses.append([self._true_lit])
        return self._true_lit

    @property
    def false_lit(self) -> int:
        """A literal constrained to be false."""
        return -self.true_lit

    def const_lit(self, value: bool) -> int:
        return self.true_lit if value else self.false_lit

    # ------------------------------------------------------------------
    # Gate encodings (each returns the output literal)
    # ------------------------------------------------------------------
    def encode_and(self, inputs: Sequence[int]) -> int:
        """Encode ``out = AND(inputs)`` and return ``out``."""
        inputs = list(inputs)
        if not inputs:
            return self.true_lit
        if len(inputs) == 1:
            return inputs[0]
        out = self.new_var()
        for lit in inputs:
            self.add_clause([-out, lit])
        self.add_clause([out] + [-lit for lit in inputs])
        return out

    def encode_or(self, inputs: Sequence[int]) -> int:
        """Encode ``out = OR(inputs)`` and return ``out``."""
        inputs = list(inputs)
        if not inputs:
            return self.false_lit
        if len(inputs) == 1:
            return inputs[0]
        out = self.new_var()
        for lit in inputs:
            self.add_clause([out, -lit])
        self.add_clause([-out] + list(inputs))
        return out

    def encode_xor(self, a: int, b: int) -> int:
        """Encode ``out = a XOR b`` and return ``out``."""
        out = self.new_var()
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])
        return out

    def encode_mux(self, sel: int, when_true: int, when_false: int) -> int:
        """Encode ``out = sel ? when_true : when_false`` and return ``out``."""
        out = self.new_var()
        self.add_clause([-sel, -when_true, out])
        self.add_clause([-sel, when_true, -out])
        self.add_clause([sel, -when_false, out])
        self.add_clause([sel, when_false, -out])
        return out

    def encode_equal(self, a: int, b: int) -> int:
        """Encode ``out = (a == b)`` (i.e. XNOR) and return ``out``."""
        return -self.encode_xor(a, b)

    def encode_implies_true(self, a: int, b: int) -> None:
        """Assert ``a -> b`` directly (no output variable)."""
        self.add_clause([-a, b])

    def assert_lit(self, lit: int) -> None:
        """Assert that ``lit`` is true."""
        self.add_clause([lit])

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cnf(vars={self.num_vars}, clauses={len(self.clauses)})"
