"""DIMACS CNF reading/writing.

Useful for debugging the solver against external tools and for dumping
the bit-blasted problems the formal engine generates.
"""

from __future__ import annotations

from typing import TextIO

from ..errors import SatError
from .cnf import Cnf


def write_dimacs(cnf: Cnf, stream: TextIO, comment: str = "") -> None:
    """Serialize ``cnf`` to ``stream`` in DIMACS format."""
    if comment:
        for line in comment.splitlines():
            stream.write(f"c {line}\n")
    stream.write(f"p cnf {cnf.num_vars} {len(cnf.clauses)}\n")
    for clause in cnf.clauses:
        stream.write(" ".join(str(lit) for lit in clause) + " 0\n")


def read_dimacs(stream: TextIO) -> Cnf:
    """Parse a DIMACS CNF file into a :class:`Cnf`."""
    cnf = Cnf()
    declared_vars = None
    for raw in stream:
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SatError(f"bad DIMACS header: {line!r}")
            declared_vars = int(parts[2])
            cnf.num_vars = declared_vars
            continue
        lits = [int(tok) for tok in line.split()]
        if lits and lits[-1] == 0:
            lits = lits[:-1]
        if not lits:
            continue
        top = max(abs(lit) for lit in lits)
        if top > cnf.num_vars:
            cnf.num_vars = top
        cnf.add_clause(lits)
    if declared_vars is None:
        raise SatError("DIMACS input has no 'p cnf' header")
    return cnf
