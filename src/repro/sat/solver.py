"""A CDCL SAT solver in pure Python.

This is the proof engine behind the formal property checker (the
reproduction's stand-in for JasperGold). It implements the standard
modern architecture:

* two-literal watching for unit propagation,
* first-UIP conflict analysis with clause learning and minimization,
* VSIDS-style activity ordering with phase saving, served by a lazy
  indexed max-heap (MiniSat's ``order_heap``) instead of an
  O(num_vars) scan per decision,
* Luby-sequence restarts,
* learned-clause database reduction ordered by LBD (glue), with the
  LBD recorded at learn time,
* solving under assumptions (used for incremental BMC queries).

The implementation favours flat ``list``/``array`` state over objects on
the hot path; clauses are Python lists whose first two literals are the
watched ones.

The heap orders variables by ``(activity desc, index asc)``, which is
exactly the variable the historical linear scan selected (first
strict maximum in index order), so ``order="heap"`` (the default) and
``order="scan"`` (the seed baseline, kept for A/B benchmarking)
produce bit-identical search trajectories.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SatError
from .cnf import Cnf

SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"


def luby(i: int) -> int:
    """Return the i-th element (1-based) of the Luby restart sequence.

    The sequence is 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's
    iterative formulation, shifted to 1-based indexing).
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x = x % size
    return 1 << seq


class VsidsHeapMixin:
    """Branch ordering shared by the object and arena cores.

    A lazy binary heap over VSIDS activity built on the C-implemented
    :mod:`heapq`: entries are ``(-activity, var)`` tuples snapshotted
    at push time, popped smallest-first, which is (activity desc,
    index asc) — exactly the variable the historical linear scan and
    the indexed sift-up/sift-down heap selected.  Because that
    comparator is a *total* order, every valid heap arrangement pops
    the identical variable sequence, so the heapq rewrite is
    trajectory-identical to both (``tests/unit/test_sat_fuzz.py``).

    Laziness: VSIDS bumps touch only trail (assigned) variables, so a
    bump never repairs the heap — the var re-enters with a fresh
    snapshot when backtracking unassigns it.  Stale entries (vars
    assigned since their push, or superseded snapshots) are discarded
    as they surface in ``_pick_branch_var``; a size trigger rebuilds
    the heap from the unassigned vars before duplicates accumulate
    beyond a small multiple of the variable count.
    """

    def _bump_var(self, var: int) -> None:
        act = self.activity[var] + self.var_inc
        self.activity[var] = act
        if act > 1e100:
            self._rescale_activity()

    def _rescale_activity(self) -> None:
        # Rescaling multiplies every activity by the same factor, so
        # the selection order is preserved; the stored snapshots are
        # invalidated wholesale, so rebuild the heap outright.
        for i in range(1, self.num_vars + 1):
            self.activity[i] *= 1e-100
        self.var_inc *= 1e-100
        if self._use_heap:
            self._heap_rebuild()

    def _heap_rebuild(self) -> None:
        assign = self.assign
        activity = self.activity
        self._heap = [(-activity[v], v)
                      for v in range(1, self.num_vars + 1)
                      if assign[v] == 0]
        heapq.heapify(self._heap)

    def _heap_insert(self, var: int) -> None:
        heapq.heappush(self._heap, (-self.activity[var], var))

    def _pick_branch_var(self) -> int:
        if self._use_heap:
            # Lazy deletion: pop until an unassigned variable
            # surfaces.  An unassigned var always carries a
            # current-snapshot entry (pushed at its latest unassign),
            # and activity only grows between rescales, so a stale
            # duplicate can only surface after the current entry — by
            # which time the var is assigned and skipped.
            assign = self.assign
            heap = self._heap
            pop = heapq.heappop
            while heap:
                var = pop(heap)[1]
                if assign[var] == 0:
                    return var
            return 0
        best = 0
        best_act = -1.0
        assign = self.assign
        activity = self.activity
        for var in range(1, self.num_vars + 1):
            if assign[var] == 0 and activity[var] > best_act:
                best_act = activity[var]
                best = var
        return best

    def _initial_phase(self, var: int) -> bool:
        """Saved-phase seed value for a fresh variable.

        ``phase_seed=0`` (the default) is the historical all-False
        init; nonzero seeds perturb it deterministically, which is how
        portfolio configs diversify their search without touching
        soundness (used by ``repro synth --portfolio``).
        """
        if not self.phase_seed:
            return False
        return bool((var * 0x9E3779B1 + self.phase_seed * 0x85EBCA77) >> 13 & 1)


class BatchedSolveMixin:
    """``solve_batch`` over any core exposing ``solve(keep_levels=...)``.

    Consecutive assumption sets that share a prefix reuse the trail:
    each assumption occupies exactly one (pseudo-)decision level, so
    after a SAT answer the solver only backtracks to the first level
    where the next set's assumptions diverge, skipping re-propagation
    of the shared prefix.  Verdicts are identical to per-call
    ``solve(assumptions=...)`` (pinned by the fuzz suite); trajectories
    may legitimately differ.  ``batch_shared_levels`` /
    ``batch_assumption_levels`` accumulate the prefix-share ratio for
    ``--profile-sat``.
    """

    def solve_batch(self, assumption_sets: Sequence[Sequence[int]],
                    max_conflicts: Optional[int] = None,
                    deadline: Optional[float] = None,
                    on_result=None) -> List[str]:
        """Solve each assumption set in order; returns their statuses.

        ``on_result(index, status)`` fires after each set while its
        model (for SAT answers) is still intact, so callers can extract
        witnesses before the next set reuses the solver.
        """
        results: List[str] = []
        prev: Optional[List[int]] = None
        for assumptions in assumption_sets:
            assumptions = list(assumptions)
            keep = 0
            if prev is not None:
                for a, b in zip(prev, assumptions):
                    if a != b:
                        break
                    keep += 1
            self.batch_shared_levels += keep
            self.batch_assumption_levels += len(assumptions)
            status = self.solve(assumptions=assumptions,
                                max_conflicts=max_conflicts,
                                deadline=deadline, keep_levels=keep)
            results.append(status)
            if on_result is not None:
                on_result(len(results) - 1, status)
            # Only a SAT exit leaves the assumption levels on the trail
            # (UNSAT/UNKNOWN backtrack to level 0), so only then can the
            # next set inherit a prefix.
            prev = assumptions if status == SAT else None
        return results


class Solver(VsidsHeapMixin, BatchedSolveMixin):
    """CDCL solver over DIMACS-style integer literals.

    Typical use::

        solver = Solver()
        solver.add_clause([1, -2])
        solver.add_clause([2, 3])
        result = solver.solve()            # SAT / UNSAT
        value = solver.model_value(3)      # True / False

    ``solve(assumptions=...)`` supports incremental queries: the clause
    database persists across calls and learned clauses are retained.
    """

    def __init__(self, order: str = "heap", phase_seed: int = 0):
        if order not in ("heap", "scan"):
            raise SatError(f"unknown branch order {order!r}")
        self.phase_seed = phase_seed
        self.num_vars = 0
        self.clauses: List[List[int]] = []  # problem clauses
        self.learned: List[List[int]] = []
        # watches[lit] = list of clauses watching lit. Indexed by
        # literal encoded as lit -> index (positive 2v, negative 2v+1).
        self.watches: Dict[int, List[List[int]]] = {}
        self.assign: List[int] = [0]  # 0 unassigned, 1 true, -1 false; 1-based
        self.level: List[int] = [0]
        self.reason: List[Optional[List[int]]] = [None]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.activity: List[float] = [0.0]
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.phase: List[bool] = [False]
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        #: learned-DB reductions actually performed (``--profile-sat``)
        self.reductions = 0
        #: cumulative shared/total assumption levels across solve_batch
        self.batch_shared_levels = 0
        self.batch_assumption_levels = 0
        self.max_conflicts: Optional[int] = None
        #: learned-clause count that triggers a database reduction
        self.reduce_db_threshold = 2000
        #: conflicts before the first restart (Luby-scaled thereafter)
        self.restart_base = 64
        self.order = order
        self._use_heap = order == "heap"
        # Lazy heapq max-heap over VSIDS activity: entries are
        # (-activity, var) snapshots; stale entries (var assigned, or
        # superseded by a fresher snapshot) are discarded at pop time.
        self._heap: List[Tuple[float, int]] = []
        #: failed-assumption set of the most recent UNSAT-under-
        #: assumptions solve() (empty after SAT/UNKNOWN returns)
        self.conflict_assumptions: List[int] = []
        self._seen: List[int] = [0]
        #: id(learned clause) -> LBD recorded when the clause was learned
        self._lbd: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def _ensure_var(self, var: int) -> None:
        while self.num_vars < var:
            self.num_vars += 1
            self.assign.append(0)
            self.level.append(0)
            self.reason.append(None)
            self.activity.append(0.0)
            self.phase.append(self._initial_phase(self.num_vars))
            self._seen.append(0)
            if self._use_heap:
                self._heap_insert(self.num_vars)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a problem clause; returns False if it is trivially conflicting.

        May be called between solve() calls (incremental use); any
        leftover search state is rolled back to decision level 0 first.
        """
        if not self.ok:
            return False
        if self.trail_lim:
            self._backtrack(0)
        clause = []
        seen = set()
        for lit in lits:
            if lit == 0:
                raise SatError("literal 0 is not allowed")
            self._ensure_var(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            # At decision level 0 we can filter by the current assignment.
            val = self.assign[abs(lit)]
            if val != 0 and not self.trail_lim:
                truth = (val == 1) == (lit > 0)
                if truth:
                    return True  # already satisfied
                continue  # already falsified at level 0 -> drop literal
            clause.append(lit)
        if not clause:
            self.ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True
        self.clauses.append(clause)
        self._watch_clause(clause)
        return True

    def add_cnf(self, cnf: Cnf) -> None:
        """Add every clause of a :class:`Cnf` formula."""
        self._ensure_var(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)

    def _watch_clause(self, clause: List[int]) -> None:
        self.watches.setdefault(clause[0], []).append(clause)
        self.watches.setdefault(clause[1], []).append(clause)

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        val = self.assign[abs(lit)]
        if val == 0:
            return 0
        return val if lit > 0 else -val

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        val = self._value(lit)
        if val == 1:
            return True
        if val == -1:
            return False
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else -1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            false_lit = -lit
            watchlist = self.watches.get(false_lit)
            if not watchlist:
                continue
            new_watchlist = []
            i = 0
            n = len(watchlist)
            conflict = None
            while i < n:
                clause = watchlist[i]
                i += 1
                # Normalize so clause[1] is the false literal.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                val_first = self._value(first)
                if val_first == 1:
                    new_watchlist.append(clause)
                    continue
                # Look for a new watch.
                found = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(clause)
                        found = True
                        break
                if found:
                    continue
                new_watchlist.append(clause)
                if val_first == -1:
                    # Conflict: keep remaining watches then report.
                    new_watchlist.extend(watchlist[i:])
                    conflict = clause
                    break
                # Unit: enqueue first.
                self.assign[abs(first)] = 1 if first > 0 else -1
                self.level[abs(first)] = len(self.trail_lim)
                self.reason[abs(first)] = clause
                self.trail.append(first)
            self.watches[false_lit] = new_watchlist
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _analyze(self, conflict: List[int]):
        """First-UIP analysis; returns (learned_clause, backtrack_level)."""
        seen = self._seen
        learned = [0]  # placeholder for the asserting literal
        counter = 0
        lit = 0
        clause = conflict
        index = len(self.trail) - 1
        current_level = len(self.trail_lim)
        while True:
            for q in clause if lit == 0 else clause[1:] if clause[0] == lit else [x for x in clause if x != lit]:
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if self.level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Select next literal to expand from the trail.
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = 0
            counter -= 1
            if counter == 0:
                learned[0] = -lit
                break
            clause = self.reason[var]
            assert clause is not None
        # Clear the marks left on literals that stayed in the clause.
        for q in learned[1:]:
            seen[abs(q)] = 0
        # Clause minimization: drop a literal whose reason's other
        # literals are all already (negated) in the learned clause or at
        # level 0 — the classic "local" self-subsumption test.
        learned_set = set(learned)
        reduced = [learned[0]]
        for q in learned[1:]:
            reason = self.reason[abs(q)]
            if reason is None:
                reduced.append(q)
                continue
            implied = all(
                abs(p) == abs(q) or p in learned_set or self.level[abs(p)] == 0
                for p in reason
            )
            if not implied:
                reduced.append(q)
        learned = reduced
        # Compute backtrack level.
        if len(learned) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learned)):
                if self.level[abs(learned[i])] > self.level[abs(learned[max_i])]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            bt_level = self.level[abs(learned[1])]
        return learned, bt_level

    @staticmethod
    def _seen_in(learned: List[int], p: int) -> bool:
        return p in learned or -p in learned

    def _clause_lbd(self, clause: Sequence[int]) -> int:
        levels = {self.level[abs(lit)] for lit in clause}
        return len(levels)

    def _backtrack(self, target_level: int) -> None:
        use_heap = self._use_heap
        heap = self._heap
        activity = self.activity
        heappush = heapq.heappush
        while len(self.trail_lim) > target_level:
            lim = self.trail_lim.pop()
            for lit in self.trail[lim:]:
                var = abs(lit)
                self.phase[var] = lit > 0
                self.assign[var] = 0
                self.reason[var] = None
                if use_heap:
                    heappush(heap, (-activity[var], var))
            del self.trail[lim:]
        self.qhead = len(self.trail)
        if use_heap and len(heap) > 4 * self.num_vars + 16:
            self._heap_rebuild()

    # ------------------------------------------------------------------
    # Learned clause DB management
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        if len(self.learned) < self.reduce_db_threshold:
            return
        lbd = self._lbd
        scored = sorted(self.learned,
                        key=lambda c: (lbd.get(id(c), len(c)), len(c)))
        keep = set(map(id, scored[: len(scored) // 2]))
        locked = set()
        for var in range(1, self.num_vars + 1):
            reason = self.reason[var]
            if reason is not None:
                locked.add(id(reason))
        removed = [c for c in self.learned if id(c) not in keep and id(c) not in locked and len(c) > 2]
        removed_ids = set(map(id, removed))
        if not removed:
            return
        self.reductions += 1
        self.learned = [c for c in self.learned if id(c) not in removed_ids]
        for clause_id in removed_ids:
            lbd.pop(clause_id, None)
        # A live clause sits in exactly the two watchlists of its first
        # two literals (the propagation invariant), so only the lists
        # actually containing removed clauses need rebuilding — not
        # every watchlist in the solver.
        touched: Dict[int, set] = {}
        for clause in removed:
            touched.setdefault(clause[0], set()).add(id(clause))
            touched.setdefault(clause[1], set()).add(id(clause))
        for lit, ids in touched.items():
            watchlist = self.watches.get(lit)
            if watchlist:
                self.watches[lit] = [c for c in watchlist if id(c) not in ids]

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = (), max_conflicts: Optional[int] = None,
              deadline: Optional[float] = None, keep_levels: int = 0) -> str:
        """Run CDCL search; returns SAT, UNSAT or UNKNOWN (budget hit).

        ``assumptions`` are literals treated as temporary decisions; on
        UNSAT caused by assumptions, :attr:`conflict_assumptions` holds a
        subset of failed assumptions.  ``deadline`` is an absolute
        ``time.perf_counter()`` instant: the search polls the clock
        every few conflicts and returns UNKNOWN once it is past due.

        ``keep_levels`` (used by :meth:`solve_batch`) retains that many
        leading decision levels from the previous call instead of
        restarting at level 0; the caller guarantees they correspond to
        a shared prefix of the new assumption list.
        """
        # Reset before any early return: a caller inspecting the
        # failed-assumption set after a timed-out call must not read
        # the previous query's core.
        self.conflict_assumptions = []
        if deadline is not None and time.perf_counter() >= deadline:
            return UNKNOWN
        if not self.ok:
            return UNSAT
        if keep_levels:
            keep_levels = min(keep_levels, len(self.trail_lim))
        self._backtrack(keep_levels if keep_levels else 0)
        conflict = self._propagate()
        if conflict is not None:
            if self.trail_lim:
                # A conflict while kept assumption levels are still on
                # the trail (possible only if clauses were added since
                # the previous call) is not a global UNSAT: retry from
                # level 0 before concluding anything.
                self._backtrack(0)
                conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return UNSAT
        assumptions = list(assumptions)
        for lit in assumptions:
            self._ensure_var(abs(lit))
        conflict_budget = max_conflicts if max_conflicts is not None else self.max_conflicts
        start_conflicts = self.conflicts
        restart_num = 1
        restart_limit = self.restart_base * luby(restart_num)
        conflicts_since_restart = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if not self.trail_lim:
                    self.ok = False
                    return UNSAT
                learned, bt_level = self._analyze(conflict)
                # If the conflict is above assumption levels we may need
                # to backtrack into the assumptions: handle by returning
                # UNSAT-under-assumptions when the asserting literal
                # contradicts an assumption chain at level <= #assumptions.
                self._backtrack(bt_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self.ok = False
                        return UNSAT
                else:
                    # Record the LBD now, while the literals still carry
                    # their conflict-time decision levels, instead of
                    # recomputing it from stale levels at reduce time.
                    self._lbd[id(learned)] = self._clause_lbd(learned)
                    self.learned.append(learned)
                    self._watch_clause(learned)
                    self._enqueue(learned[0], learned)
                self.var_inc /= self.var_decay
                if conflict_budget is not None and self.conflicts - start_conflicts >= conflict_budget:
                    self._backtrack(0)
                    return UNKNOWN
                # Poll the wall clock only every 16 conflicts: a
                # perf_counter() call per conflict is measurable on the
                # hot path, and deadline precision is not.
                if deadline is not None and self.conflicts % 16 == 0 \
                        and time.perf_counter() >= deadline:
                    self._backtrack(0)
                    return UNKNOWN
                if conflicts_since_restart >= restart_limit:
                    restart_num += 1
                    restart_limit = self.restart_base * luby(restart_num)
                    conflicts_since_restart = 0
                    self._backtrack(0)
                self._reduce_db()
                continue
            # Place assumptions as pseudo-decisions first.
            if len(self.trail_lim) < len(assumptions):
                lit = assumptions[len(self.trail_lim)]
                val = self._value(lit)
                if val == 1:
                    # Already implied; introduce an empty decision level
                    # to keep the level <-> assumption index alignment.
                    self.trail_lim.append(len(self.trail))
                    continue
                if val == -1:
                    self.conflict_assumptions = self._analyze_final(lit)
                    self._backtrack(0)
                    return UNSAT
                self.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)
                continue
            var = self._pick_branch_var()
            if var == 0:
                return SAT
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            lit = var if self.phase[var] else -var
            self._enqueue(lit, None)

    def _analyze_final(self, failed_lit: int) -> List[int]:
        """Compute a set of assumptions responsible for falsifying ``failed_lit``."""
        out = [failed_lit]
        seen = set()
        stack = [abs(failed_lit)]
        while stack:
            var = stack.pop()
            if var in seen:
                continue
            seen.add(var)
            reason = self.reason[var]
            if reason is None:
                if self.level[var] > 0:
                    out.append(var if self.assign[var] == 1 else -var)
            else:
                for lit in reason:
                    if abs(lit) != var:
                        stack.append(abs(lit))
        return out

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, lit: int) -> bool:
        """Value of a literal in the satisfying assignment (after SAT)."""
        val = self._value(lit)
        # Unassigned variables are don't-cares; report False.
        return val == 1

    def model(self) -> List[int]:
        """The full model as a list of literals (after SAT)."""
        out = []
        for var in range(1, self.num_vars + 1):
            out.append(var if self.assign[var] == 1 else -var)
        return out

    def arena_bytes(self) -> int:
        """Bytes held by the packed clause arena (0: this is the
        per-clause object core — the counter exists so ``--profile-sat``
        reads uniformly across cores)."""
        return 0


def solve_cnf(cnf: Cnf, assumptions: Sequence[int] = (), max_conflicts: Optional[int] = None):
    """One-shot convenience: solve a :class:`Cnf`, returning (status, solver)."""
    solver = Solver()
    solver.add_cnf(cnf)
    status = solver.solve(assumptions=assumptions, max_conflicts=max_conflicts)
    return status, solver
