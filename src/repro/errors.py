"""Exception hierarchy shared by all repro subsystems.

Every subsystem raises a subclass of :class:`ReproError` so that callers
can distinguish failures of this library from programming errors. The
hierarchy mirrors the package layout: one error family per substrate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VerilogError(ReproError):
    """Base class for errors in the Verilog frontend."""


class LexError(VerilogError):
    """A character sequence could not be tokenized.

    Carries the source position so tooling can point at the offending
    text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(VerilogError):
    """The token stream does not match the supported Verilog grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ElaborationError(VerilogError):
    """The parsed design could not be elaborated into a netlist."""


class NetlistError(ReproError):
    """An ill-formed netlist was constructed or manipulated."""


class SimulationError(ReproError):
    """The RTL simulator was driven with inconsistent inputs or state."""


class SatError(ReproError):
    """The SAT solver was used incorrectly (not: UNSAT results)."""


class FormalError(ReproError):
    """The formal engine (bit-blasting / BMC / induction) failed."""


class DischargeTimeout(FormalError):
    """A property check exceeded its wall-clock deadline.

    The discharge scheduler treats this as a transient fault: the check
    is retried with backoff and, if it keeps timing out, degrades to a
    first-class UNKNOWN verdict rather than aborting the run.
    """


class WorkerCrashError(FormalError):
    """A discharge worker process died (or was simulated to die).

    Raised in-process when a crash is injected into the inline serial
    path; a real pool-worker death surfaces as ``BrokenProcessPool``
    and is mapped onto the same recovery policy.
    """


class JournalError(ReproError):
    """A checkpoint journal could not be opened, written, or replayed."""


class ResilienceError(ReproError):
    """The shared resilience layer (worker pools, budgets) failed in a
    way retries could not absorb — e.g. a task kept returning invalid
    results past its retry budget."""


class InterruptedRun(ReproError):
    """A run was interrupted (SIGINT/SIGTERM) after checkpointing.

    Raised by the crash-safe runners *after* committing their journals,
    carrying whatever completed before the interrupt so the CLI can
    print partial results and a resume recipe.  ``partial`` holds the
    completed items (layer-specific); ``resumable`` says whether a
    journal exists to resume from.
    """

    def __init__(self, message: str, partial=None, resumable: bool = False):
        super().__init__(message)
        self.partial = partial if partial is not None else []
        self.resumable = resumable


class PipelineError(ReproError):
    """The end-to-end pipeline's stage state is missing or inconsistent
    (e.g. a recorded stage artifact no longer matches its checksum)."""


class ServiceError(ReproError):
    """The ``repro serve`` daemon (or its client protocol) was misused,
    is unreachable, or refused a request (e.g. queue backpressure)."""


class StoreError(ServiceError):
    """The content-addressed artifact store was driven with invalid
    namespaces/keys or hit an unrecoverable I/O failure.

    Note: *corruption* of stored entries is not an error — corrupt
    entries are quarantined and reported as misses so callers
    recompute."""


class PropertyError(ReproError):
    """An SVA-style property is malformed or unsupported."""


class MetadataError(ReproError):
    """User-supplied design metadata (IFR/PCR/interfaces) is invalid.

    The paper (section 4.2.1, 4.3.4) requires modest designer-provided
    metadata; this error reports missing or inconsistent annotations.
    """


class SynthesisError(ReproError):
    """The rtl2uspec synthesis procedure could not complete."""


class UspecError(ReproError):
    """A uspec model is syntactically or semantically invalid."""


class LitmusError(ReproError):
    """A litmus test is malformed."""


class CheckError(ReproError):
    """The uhb (Check-style) verifier failed."""
